#include "cluster/worker.hpp"

#include <condition_variable>
#include <deque>
#include <sstream>

#include "durable/format.hpp"
#include "serve/wire.hpp"

namespace psm::cluster {

namespace {

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // namespace

/** One standby connection shared by every shard's sink. */
struct Worker::ShipChannel
{
    std::string host;
    std::uint16_t port;
    std::uint32_t slot;

    std::mutex mu;
    Fd fd;
    bool connected = false;
    std::uint64_t frames = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t dropped = 0;
    std::uint64_t reconnects = 0;

    ShipChannel(std::string h, std::uint16_t p, std::uint32_t s)
        : host(std::move(h)), port(p), slot(s)
    {}

    /** Connects and says hello; caller holds mu. */
    bool
    ensureConnected()
    {
        if (connected)
            return true;
        try {
            fd = connectTcp(host, port);
        } catch (const ClusterError &) {
            return false;
        }
        Frame hello;
        hello.msg = Msg::ShipHello;
        hello.gsid = 0;
        appendU64(hello.body, slot);
        if (!sendFrame(fd.get(), hello)) {
            fd.reset();
            return false;
        }
        connected = true;
        ++reconnects;
        return true;
    }

    /** Best-effort send; a failure marks the channel down. Caller
     *  holds mu. */
    bool
    sendLocked(const Frame &frame)
    {
        if (!connected)
            return false;
        if (!sendFrame(fd.get(), frame)) {
            connected = false;
            fd.reset();
            return false;
        }
        return true;
    }
};

/**
 * Per-shard WalShipSink: forwards frames over the shared channel.
 * Frames are dropped while the channel is down (asynchronous
 * replication never fails the primary); checkpoints reconnect,
 * because a fresh snapshot supersedes everything dropped before it.
 */
class Worker::ShipSink : public durable::WalShipSink
{
  public:
    ShipSink(ShipChannel &chan, std::uint64_t gsid)
        : chan_(chan), gsid_(gsid)
    {}

    void
    onWalFrame(std::uint64_t seq,
               std::span<const std::uint8_t> frame) override
    {
        Frame f;
        f.msg = Msg::WalFrame;
        f.gsid = gsid_;
        f.body.reserve(8 + frame.size());
        appendU64(f.body, seq);
        f.body.insert(f.body.end(), frame.begin(), frame.end());
        std::lock_guard<std::mutex> lk(chan_.mu);
        if (chan_.sendLocked(f))
            ++chan_.frames;
        else
            ++chan_.dropped;
    }

    void
    onCheckpoint(std::uint64_t seq,
                 const std::string &snapshot_path) override
    {
        std::vector<std::uint8_t> snap;
        try {
            snap = durable::readFileAll(snapshot_path);
        } catch (const durable::DurableError &) {
            return; // pruned already? nothing to ship
        }
        Frame f;
        f.msg = Msg::WalSnapshot;
        f.gsid = gsid_;
        f.body.reserve(8 + snap.size());
        appendU64(f.body, seq);
        f.body.insert(f.body.end(), snap.begin(), snap.end());
        std::lock_guard<std::mutex> lk(chan_.mu);
        // The checkpoint boundary is the resync point: right after a
        // local checkpoint the WAL is empty, so a reconnect here
        // leaves the standby exactly one snapshot behind nothing.
        if (!chan_.connected)
            chan_.ensureConnected();
        if (chan_.sendLocked(f))
            ++chan_.snapshots;
        else
            ++chan_.dropped;
    }

  private:
    ShipChannel &chan_;
    std::uint64_t gsid_;
};

struct Worker::Shard
{
    std::unique_ptr<ShipSink> ship; ///< must outlive the pool
    std::unique_ptr<serve::SessionPool> pool;
    durable::RecoveryStats recovery;
    bool restored = false;
};

/** One gsid's FIFO lane within a connection. */
struct Worker::Lane
{
    std::deque<Frame> q;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
};

struct Worker::Conn
{
    Fd fd;
    std::mutex write_mu;
    std::mutex lanes_mu;
    std::map<std::uint64_t, std::unique_ptr<Lane>> lanes;
};

Worker::Worker(std::shared_ptr<const ops5::Program> program,
               WorkerOptions options)
    : program_(std::move(program)), options_(std::move(options))
{
    listen_fd_ = listenTcp(options_.host, options_.port);
    port_ = localPort(listen_fd_.get());
    if (!options_.ship_host.empty() && !options_.dir.empty())
        ship_ = std::make_unique<ShipChannel>(
            options_.ship_host, options_.ship_port, options_.slot);
}

Worker::~Worker() { stop(); }

std::string
Worker::shardDir(const std::string &root, std::uint64_t gsid)
{
    return root + "/shard-" + std::to_string(gsid);
}

void
Worker::start()
{
    accept_thread_ = std::thread(&Worker::acceptLoop, this);
}

void
Worker::run()
{
    acceptLoop();
}

void
Worker::stop()
{
    if (stopping_.exchange(true))
        return;
    listen_fd_.shutdownBoth();
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto &c : conns_)
            c->fd.shutdownBoth();
    }
    if (accept_thread_.joinable())
        accept_thread_.join();
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    // Pools drain (and, per policy, checkpoint) in their destructors.
    std::lock_guard<std::mutex> lk(shards_mu_);
    shards_.clear();
}

void
Worker::acceptLoop()
{
    for (;;) {
        int fd = acceptTcp(listen_fd_.get());
        if (fd < 0)
            return; // listener shut down
        auto conn = std::make_shared<Conn>();
        conn->fd = Fd(fd);
        {
            std::lock_guard<std::mutex> lk(conns_mu_);
            if (stopping_.load()) {
                return;
            }
            conns_.insert(conn);
            conn_threads_.emplace_back(&Worker::serveConn, this,
                                       conn);
        }
    }
}

void
Worker::serveConn(std::shared_ptr<Conn> conn)
{
    Frame frame;
    for (;;) {
        bool ok;
        try {
            ok = recvFrame(conn->fd.get(), frame);
        } catch (const ClusterError &e) {
            sendFrame(conn->fd.get(),
                      Frame::text(Msg::Error, 0, 0, e.what()),
                      &conn->write_mu);
            break;
        }
        if (!ok)
            break;
        switch (frame.msg) {
          case Msg::Submit:
          case Msg::OpenShard:
          case Msg::DropShard: {
            // Lane dispatch: per-gsid FIFO, cross-gsid parallel.
            std::lock_guard<std::mutex> lk(conn->lanes_mu);
            auto [it, fresh] =
                conn->lanes.try_emplace(frame.gsid, nullptr);
            if (fresh) {
                it->second = std::make_unique<Lane>();
                it->second->thread =
                    std::thread(&Worker::laneLoop, this, conn,
                                frame.gsid, it->second.get());
            }
            it->second->q.push_back(frame);
            it->second->cv.notify_one();
            break;
          }
          case Msg::Scrape: {
            const ScrapeKind kind =
                !frame.body.empty() &&
                        frame.body[0] ==
                            static_cast<std::uint8_t>(
                                ScrapeKind::Metrics)
                    ? ScrapeKind::Metrics
                    : ScrapeKind::StatsJson;
            std::string text = kind == ScrapeKind::Metrics
                                   ? metricsText()
                                   : statsJson();
            sendFrame(conn->fd.get(),
                      Frame::text(Msg::ScrapeText, frame.req_id, 0,
                                  text),
                      &conn->write_mu);
            break;
          }
          case Msg::Ping: {
            Frame pong;
            pong.msg = Msg::Pong;
            pong.req_id = frame.req_id;
            sendFrame(conn->fd.get(), pong, &conn->write_mu);
            break;
          }
          default:
            sendFrame(conn->fd.get(),
                      Frame::text(Msg::Error, frame.req_id,
                                  frame.gsid,
                                  std::string("unexpected ") +
                                      msgName(frame.msg)),
                      &conn->write_mu);
            break;
        }
    }

    // Stop and join every lane before dropping the connection.
    std::map<std::uint64_t, std::unique_ptr<Lane>> lanes;
    {
        std::lock_guard<std::mutex> lk(conn->lanes_mu);
        lanes.swap(conn->lanes);
        for (auto &[gsid, lane] : lanes) {
            lane->stop = true;
            lane->cv.notify_all();
        }
    }
    for (auto &[gsid, lane] : lanes)
        if (lane->thread.joinable())
            lane->thread.join();
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(conn);
}

void
Worker::laneLoop(std::shared_ptr<Conn> conn, std::uint64_t gsid,
                 Lane *lane)
{
    (void)gsid;
    for (;;) {
        Frame frame;
        {
            std::unique_lock<std::mutex> lk(conn->lanes_mu);
            lane->cv.wait(lk, [lane] {
                return lane->stop || !lane->q.empty();
            });
            if (lane->q.empty())
                return; // stop and nothing left
            frame = std::move(lane->q.front());
            lane->q.pop_front();
        }
        handleLaneFrame(*conn, frame);
    }
}

void
Worker::handleLaneFrame(Conn &conn, const Frame &frame)
{
    auto sendError = [&](const std::string &what) {
        sendFrame(conn.fd.get(),
                  Frame::text(Msg::Error, frame.req_id, frame.gsid,
                              what),
                  &conn.write_mu);
    };
    try {
        switch (frame.msg) {
          case Msg::OpenShard: {
            const bool restore =
                !frame.body.empty() && frame.body[0] != 0;
            Shard *shard = openShard(frame.gsid, restore);
            sendFrame(conn.fd.get(),
                      Frame::text(Msg::ShardInfo, frame.req_id,
                                  frame.gsid,
                                  shardInfoJson(frame.gsid, *shard)),
                      &conn.write_mu);
            break;
          }
          case Msg::DropShard:
            dropShard(frame.gsid, conn, frame);
            break;
          case Msg::Submit: {
            serve::WireRequest wreq =
                serve::decodeRequest(frame.body);
            serve::Request req =
                serve::fromWire(wreq, program_->symbols());
            // Auto-open: a submit to a shard this worker has never
            // seen warm-starts it when state exists (failover) and
            // creates it fresh otherwise.
            Shard *shard = openShard(frame.gsid, true);
            serve::WireResponse wresp;
            serve::Submit sub =
                shard->pool->submit(0, std::move(req));
            if (!sub.accepted()) {
                wresp = serve::rejectionResponse(wreq.kind,
                                                 sub.rejected);
            } else {
                serve::Response resp = sub.response.get();
                wresp = serve::toWire(resp);
            }
            Frame reply;
            reply.msg = Msg::Reply;
            reply.req_id = frame.req_id;
            reply.gsid = frame.gsid;
            reply.body = serve::encodeResponse(wresp);
            sendFrame(conn.fd.get(), reply, &conn.write_mu);
            break;
          }
          default: break; // unreachable: lane receives only these
        }
    } catch (const std::exception &e) {
        sendError(e.what());
    }
}

Worker::Shard *
Worker::openShard(std::uint64_t gsid, bool restore)
{
    std::lock_guard<std::mutex> lk(shards_mu_);
    auto it = shards_.find(gsid);
    if (it != shards_.end())
        return it->second.get();

    if (on_open_shard)
        on_open_shard(gsid);

    auto shard = std::make_unique<Shard>();
    serve::PoolOptions po;
    po.n_sessions = 1;
    po.n_threads = 1;
    po.queue_capacity = options_.queue_capacity;
    po.shed_watermark = options_.shed_watermark;
    po.max_batch = options_.max_batch;
    po.default_run_cycles = options_.default_run_cycles;
    po.matcher = options_.matcher;
    po.strategy = options_.strategy;
    if (!options_.dir.empty()) {
        po.durability.dir = shardDir(options_.dir, gsid);
        po.durability.fsync = options_.fsync;
        po.durability.checkpoint = options_.checkpoint;
        if (ship_) {
            shard->ship =
                std::make_unique<ShipSink>(*ship_, gsid);
            po.durability.ship = shard->ship.get();
        }
        po.restore = restore;
    }
    shard->pool =
        std::make_unique<serve::SessionPool>(program_, po);
    if (!options_.dir.empty()) {
        shard->recovery = shard->pool->recoveryStats(0);
        shard->restored = shard->recovery.recovered;
        // Baseline ship: a checkpoint right after open puts a full
        // snapshot on the standby before any live frame refers to it.
        if (ship_)
            shard->pool->checkpointAll();
    }
    Shard *raw = shard.get();
    shards_.emplace(gsid, std::move(shard));
    return raw;
}

void
Worker::dropShard(std::uint64_t gsid, Conn &conn, const Frame &frame)
{
    std::unique_ptr<Shard> shard;
    {
        std::lock_guard<std::mutex> lk(shards_mu_);
        auto it = shards_.find(gsid);
        if (it != shards_.end()) {
            shard = std::move(it->second);
            shards_.erase(it);
        }
    }
    std::ostringstream info;
    if (shard) {
        // drain() completes everything admitted and, with the
        // default on_drain policy, checkpoints — the migration
        // source's handoff snapshot.
        shard->pool->drain();
        serve::SessionPool::Stats st = shard->pool->stats();
        shard->pool.reset();
        info << "{\"gsid\": " << gsid << ", \"dropped\": true"
             << ", \"completed\": " << st.completed << "}";
    } else {
        info << "{\"gsid\": " << gsid << ", \"dropped\": false}";
    }
    sendFrame(conn.fd.get(),
              Frame::text(Msg::ShardInfo, frame.req_id, gsid,
                          info.str()),
              &conn.write_mu);
}

std::string
Worker::shardInfoJson(std::uint64_t gsid, const Shard &shard)
{
    std::ostringstream os;
    os << "{\"gsid\": " << gsid
       << ", \"restored\": " << (shard.restored ? "true" : "false")
       << ", \"snapshot_seq\": " << shard.recovery.snapshot_seq
       << ", \"wal_records_replayed\": "
       << shard.recovery.wal_records_replayed
       << ", \"wal_truncated\": "
       << (shard.recovery.wal_truncated ? "true" : "false") << "}";
    return os.str();
}

ShipStats
Worker::shipStats() const
{
    ShipStats out;
    if (!ship_)
        return out;
    std::lock_guard<std::mutex> lk(ship_->mu);
    out.frames = ship_->frames;
    out.snapshots = ship_->snapshots;
    out.dropped = ship_->dropped;
    out.reconnects = ship_->reconnects;
    out.connected = ship_->connected;
    return out;
}

std::string
Worker::statsJson()
{
    std::ostringstream os;
    os << "{\"worker_slot\": " << options_.slot << ", \"shards\": [";
    {
        std::lock_guard<std::mutex> lk(shards_mu_);
        bool first = true;
        for (const auto &[gsid, shard] : shards_) {
            serve::SessionPool::Stats st = shard->pool->stats();
            os << (first ? "" : ", ") << "{\"gsid\": " << gsid
               << ", \"admitted\": " << st.admitted
               << ", \"completed\": " << st.completed
               << ", \"expired\": " << st.expired
               << ", \"rejected_full\": " << st.rejected_full
               << ", \"rejected_overload\": " << st.rejected_overload
               << ", \"rejected_shutdown\": " << st.rejected_shutdown
               << ", \"batches\": " << st.batches
               << ", \"restored\": "
               << (shard->restored ? "true" : "false")
               << ", \"wal_records_replayed\": "
               << shard->recovery.wal_records_replayed << "}";
            first = false;
        }
    }
    ShipStats ship = shipStats();
    os << "], \"ship\": {\"connected\": "
       << (ship.connected ? "true" : "false")
       << ", \"frames\": " << ship.frames
       << ", \"snapshots\": " << ship.snapshots
       << ", \"dropped\": " << ship.dropped
       << ", \"reconnects\": " << ship.reconnects << "}";
    if (extra_stats_json)
        os << ", \"standby\": " << extra_stats_json();
    os << "}";
    return os.str();
}

std::string
Worker::metricsText()
{
    std::ostringstream os;
    os << "# HELP psm_worker_shards Shards open on this worker.\n"
       << "# TYPE psm_worker_shards gauge\n"
       << "psm_worker_shards{slot=\"" << options_.slot << "\"} ";
    {
        std::lock_guard<std::mutex> lk(shards_mu_);
        os << shards_.size() << "\n";
        struct Col
        {
            const char *name;
            const char *help;
            std::uint64_t serve::SessionPool::Stats::*field;
        };
        static const Col cols[] = {
            {"psm_worker_shard_admitted_total",
             "Requests admitted per shard.",
             &serve::SessionPool::Stats::admitted},
            {"psm_worker_shard_completed_total",
             "Responses delivered per shard.",
             &serve::SessionPool::Stats::completed},
            {"psm_worker_shard_expired_total",
             "Deadline-expired completions per shard.",
             &serve::SessionPool::Stats::expired},
            {"psm_worker_shard_batches_total",
             "Match batches committed per shard.",
             &serve::SessionPool::Stats::batches},
        };
        for (const Col &col : cols) {
            os << "# HELP " << col.name << " " << col.help << "\n"
               << "# TYPE " << col.name << " counter\n";
            for (const auto &[gsid, shard] : shards_) {
                serve::SessionPool::Stats st = shard->pool->stats();
                os << col.name << "{slot=\"" << options_.slot
                   << "\",gsid=\"" << gsid << "\"} " << st.*(col.field)
                   << "\n";
            }
        }
    }
    ShipStats ship = shipStats();
    os << "# HELP psm_worker_ship_frames_total WAL frames shipped.\n"
       << "# TYPE psm_worker_ship_frames_total counter\n"
       << "psm_worker_ship_frames_total " << ship.frames << "\n"
       << "# HELP psm_worker_ship_snapshots_total Snapshots shipped.\n"
       << "# TYPE psm_worker_ship_snapshots_total counter\n"
       << "psm_worker_ship_snapshots_total " << ship.snapshots << "\n"
       << "# HELP psm_worker_ship_dropped_total Frames dropped while "
          "the ship channel was down.\n"
       << "# TYPE psm_worker_ship_dropped_total counter\n"
       << "psm_worker_ship_dropped_total " << ship.dropped << "\n"
       << "# HELP psm_worker_ship_connected Ship channel liveness.\n"
       << "# TYPE psm_worker_ship_connected gauge\n"
       << "psm_worker_ship_connected " << (ship.connected ? 1 : 0)
       << "\n";
    return os.str();
}

} // namespace psm::cluster
