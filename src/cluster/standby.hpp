/**
 * @file
 * Standby: the receiving end of WAL shipping.
 *
 * Listens for worker ship connections and maintains, per shard, a
 * replica state directory with exactly the layout a worker's shard
 * dir has (`<dir>/shard-<gsid>/session-0/{wal.plog, snap-*.psnap}`).
 * Promote is therefore not a special code path at all: a Worker
 * serving over the same root directory opens the shard with
 * restore=true and durable::Manager::recover() does the rest —
 * torn-tail truncation, seq-gap rejection, bounded replay, verbatim.
 *
 * Replication discipline (asynchronous, checkpoint-anchored):
 *  - a shipped snapshot installs atomically, resets the replica WAL
 *    and re-anchors the accepted sequence;
 *  - a frame must extend the replica contiguously (seq == last+1);
 *    duplicates (seq <= last) are dropped silently — the primary may
 *    resend across reconnects — and a GAP marks the replica lagging:
 *    frames are dropped until the next snapshot re-anchors it, so a
 *    lossy stream degrades recovery freshness, never correctness;
 *  - every received frame is CRC-revalidated by WalWriter's
 *    appendRawFrame before touching the replica log, and a replica
 *    WAL reopened after a standby crash is torn-tail-truncated
 *    exactly like local recovery.
 */

#ifndef PSM_CLUSTER_STANDBY_HPP
#define PSM_CLUSTER_STANDBY_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/socket.hpp"
#include "durable/wal.hpp"
#include "ops5/production.hpp"

namespace psm::cluster {

struct StandbyOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< ship listen port; 0 = ephemeral

    /** Replica root; doubles as the promote Worker's state dir. */
    std::string dir;

    /** Replica snapshots retained per shard. */
    std::size_t keep_snapshots = 2;
};

/** One shard's replica health (for scrapes and the failover bound:
 *  promote replays at most `frames_since_snapshot` records). */
struct ReplicaStats
{
    std::uint64_t gsid = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t frames_applied = 0;
    std::uint64_t frames_since_snapshot = 0;
    std::uint64_t gap_drops = 0;
    std::uint64_t snapshots_installed = 0;
    bool lagging = false;
};

class Standby
{
  public:
    Standby(std::shared_ptr<const ops5::Program> program,
            StandbyOptions options);
    ~Standby();

    Standby(const Standby &) = delete;
    Standby &operator=(const Standby &) = delete;

    std::uint16_t port() const { return port_; }

    void start();
    void stop();

    /** Closes the replica writer for @p gsid so a promoting Worker
     *  can recover the directory exclusively (Worker::on_open_shard
     *  hook). Frames arriving afterwards are dropped. */
    void releaseShard(std::uint64_t gsid);

    std::vector<ReplicaStats> replicaStats() const;

    /** Replica-plane summary as a JSON object string. */
    std::string statsJson() const;

  private:
    struct Replica;

    void acceptLoop();
    void serveConn(std::shared_ptr<Fd> fd);
    void handleSnapshot(const Frame &frame);
    void handleFrame(const Frame &frame);
    Replica *openReplica(std::uint64_t gsid);
    std::string sessionDir(std::uint64_t gsid) const;

    std::shared_ptr<const ops5::Program> program_;
    StandbyOptions options_;
    std::uint64_t fingerprint_;
    Fd listen_fd_;
    std::uint16_t port_ = 0;

    mutable std::mutex mu_;
    std::map<std::uint64_t, std::unique_ptr<Replica>> replicas_;
    std::set<std::uint64_t> released_;

    std::mutex conns_mu_;
    std::set<std::shared_ptr<Fd>> conns_;
    std::vector<std::thread> conn_threads_;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_STANDBY_HPP
