/**
 * @file
 * Cluster worker: one process serving a set of session shards.
 *
 * A shard is one global session id (gsid) backed by a single-session
 * SessionPool over `<dir>/shard-<gsid>/` — the same drain→snapshot→
 * restore machinery the serving layer already has, which is what
 * makes migration and failover "free": opening a shard with restore
 * IS recovery, dropping one with checkpoint IS the migration source
 * side.
 *
 * Connection model: thread per connection; within a connection, a
 * lane (queue + thread) per gsid. Requests for one session execute
 * and reply strictly in arrival order — the ordering the protocol
 * promises — while different sessions proceed in parallel. Control
 * messages (OpenShard/DropShard) ride the same lane as the gsid's
 * submits, so "every submit accepted before the drop completes" holds
 * by construction.
 *
 * WAL shipping: when a standby endpoint is configured, every shard's
 * durable::Manager gets a WalShipSink that forwards committed frames
 * and checkpoint snapshots over one shared TCP connection. Shipping
 * is asynchronous replication — a send failure marks the channel down
 * and DROPS frames (never blocks or fails the primary); the channel
 * reconnects and resyncs at the next checkpoint, when a fresh
 * snapshot makes dropped frames redundant.
 */

#ifndef PSM_CLUSTER_WORKER_HPP
#define PSM_CLUSTER_WORKER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/socket.hpp"
#include "durable/manager.hpp"
#include "serve/session_pool.hpp"

namespace psm::cluster {

struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; read back with port()

    /** Ring slot this worker fills (identity in scrapes/shipping). */
    std::uint32_t slot = 0;

    /** State root; shards persist under `<dir>/shard-<gsid>/`.
     *  Empty disables durability (and with it shipping). */
    std::string dir;

    serve::MatcherSpec matcher{};
    ops5::Strategy strategy = ops5::Strategy::Lex;
    std::size_t queue_capacity = 1024;
    std::size_t shed_watermark = 0;
    std::size_t max_batch = 64;
    std::uint64_t default_run_cycles = 10000;

    durable::FsyncPolicy fsync = durable::FsyncPolicy::Batch;
    durable::CheckpointPolicy checkpoint{};

    /** Standby to ship WAL frames to; empty host disables. */
    std::string ship_host;
    std::uint16_t ship_port = 0;
};

/** Shipping-channel health counters (scraped via /metrics). */
struct ShipStats
{
    std::uint64_t frames = 0;    ///< WAL frames shipped
    std::uint64_t snapshots = 0; ///< checkpoint snapshots shipped
    std::uint64_t dropped = 0;   ///< frames dropped while down
    std::uint64_t reconnects = 0;
    bool connected = false;
};

class Worker
{
  public:
    Worker(std::shared_ptr<const ops5::Program> program,
           WorkerOptions options);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /** The bound listen port (after construction). */
    std::uint16_t port() const { return port_; }

    /** Serves until stop(); blocking. */
    void run();

    /** run() on a background thread. */
    void start();

    /** Stops the accept loop, closes connections, drains shards. */
    void stop();

    /** Invoked (if set) right before a shard directory is opened —
     *  the standby composition closes its replica writers here so
     *  promote-by-restore never has two writers on one WAL. Set
     *  before start(). */
    std::function<void(std::uint64_t)> on_open_shard;

    /** Extra JSON object spliced into the scrape stats as
     *  `"standby": ...` — the standby composition reports its
     *  replica plane here. Set before start(). */
    std::function<std::string()> extra_stats_json;

    ShipStats shipStats() const;

    static std::string shardDir(const std::string &root,
                                std::uint64_t gsid);

  private:
    struct Shard;
    struct ShipChannel;
    class ShipSink;
    struct Lane;
    struct Conn;

    void acceptLoop();
    void serveConn(std::shared_ptr<Conn> conn);
    void laneLoop(std::shared_ptr<Conn> conn, std::uint64_t gsid,
                  Lane *lane);
    void handleLaneFrame(Conn &conn, const Frame &frame);
    Shard *openShard(std::uint64_t gsid, bool restore);
    void dropShard(std::uint64_t gsid, Conn &conn,
                   const Frame &frame);
    std::string shardInfoJson(std::uint64_t gsid, const Shard &shard);
    std::string statsJson();
    std::string metricsText();

    std::shared_ptr<const ops5::Program> program_;
    WorkerOptions options_;
    Fd listen_fd_;
    std::uint16_t port_ = 0;

    std::mutex shards_mu_;
    std::map<std::uint64_t, std::unique_ptr<Shard>> shards_;

    std::unique_ptr<ShipChannel> ship_;

    std::mutex conns_mu_;
    std::set<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> conn_threads_;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_WORKER_HPP
