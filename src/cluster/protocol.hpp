/**
 * @file
 * The cluster wire protocol: length-prefixed, CRC-framed messages.
 *
 * Every message travels as
 *
 *     u32 payload_length | u32 crc32(payload) | payload
 *
 * (the same frame shape as the durable WAL, so torn and corrupt
 * frames are detected identically) where the payload is
 *
 *     u8 msg_type | u64 req_id | u64 gsid | body
 *
 * The fixed prefix is deliberate: the router switches Submit traffic
 * on `gsid` without decoding the body, so the router stays
 * program-agnostic — only workers parse request payloads. `req_id`
 * correlates a reply with its request over a multiplexed connection
 * (one router↔worker connection carries every shard's traffic);
 * one-way messages (WAL shipping) carry req_id 0.
 *
 * Message inventory and who sends what:
 *
 *     client → router → worker : Submit          (body: WireRequest)
 *     worker → router → client : Reply           (body: WireResponse)
 *     router → worker          : OpenShard       (body: u8 restore)
 *     worker → router          : ShardInfo       (body: JSON text)
 *     router → worker          : DropShard       (body: u8 checkpoint)
 *     router → worker          : Scrape          (body: u8 kind)
 *     worker → router          : ScrapeText      (body: text)
 *     any    → any             : Ping / Pong
 *     any    → any             : Error           (body: message)
 *     client → router          : Migrate         (body: u32 target)
 *     worker → standby         : ShipHello       (body: u32 slot)
 *     worker → standby         : WalFrame        (body: u64 seq | frame)
 *     worker → standby         : WalSnapshot     (body: u64 seq | snap)
 */

#ifndef PSM_CLUSTER_PROTOCOL_HPP
#define PSM_CLUSTER_PROTOCOL_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/socket.hpp"

namespace psm::cluster {

enum class Msg : std::uint8_t {
    Submit = 1,
    Reply = 2,
    OpenShard = 3,
    ShardInfo = 4,
    DropShard = 5,
    Scrape = 6,
    ScrapeText = 7,
    Ping = 8,
    Pong = 9,
    Error = 10,
    Migrate = 11,
    ShipHello = 12,
    WalFrame = 13,
    WalSnapshot = 14,
};

const char *msgName(Msg m);

/** Scrape body kinds. */
enum class ScrapeKind : std::uint8_t { StatsJson = 0, Metrics = 1 };

/** One protocol message. */
struct Frame
{
    Msg msg = Msg::Ping;
    std::uint64_t req_id = 0;
    std::uint64_t gsid = 0;
    std::vector<std::uint8_t> body;

    std::string
    bodyText() const
    {
        return std::string(body.begin(), body.end());
    }

    static Frame
    text(Msg msg, std::uint64_t req_id, std::uint64_t gsid,
         const std::string &s)
    {
        Frame f;
        f.msg = msg;
        f.req_id = req_id;
        f.gsid = gsid;
        f.body.assign(s.begin(), s.end());
        return f;
    }
};

/** Frames larger than this are rejected as corrupt (a garbage length
 *  prefix must not trigger a multi-GB allocation). */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Sends one frame; @p write_mu serializes multiplexed writers.
 *  False when the peer is gone. */
bool sendFrame(int fd, const Frame &frame,
               std::mutex *write_mu = nullptr);

/** Receives one frame. False on clean connection close; ClusterError
 *  on a corrupt frame (bad length or CRC) — a byte-stream transport
 *  never legitimately corrupts, so corruption means the peer is not
 *  speaking this protocol. */
bool recvFrame(int fd, Frame &out);

} // namespace psm::cluster

#endif // PSM_CLUSTER_PROTOCOL_HPP
