#include "cluster/router.hpp"

#include <chrono>
#include <sstream>

namespace psm::cluster {

namespace {

/** Pulls an unsigned JSON member out of flat ShardInfo text; 0 when
 *  absent (the info schemas are produced by our own workers). */
std::uint64_t
jsonUint(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    auto at = text.find(needle);
    if (at == std::string::npos)
        return 0;
    at += needle.size();
    std::uint64_t v = 0;
    while (at < text.size() && text[at] >= '0' && text[at] <= '9')
        v = v * 10 + static_cast<std::uint64_t>(text[at++] - '0');
    return v;
}

} // namespace

struct Router::ClientConn
{
    Fd fd;
    std::mutex write_mu;
};

struct Router::PendingCall
{
    std::shared_ptr<ClientConn> client;
    std::uint64_t client_req_id = 0;
    std::uint64_t gsid = 0;
    bool tracked = false; ///< counted in outstanding_
    std::shared_ptr<std::promise<Frame>> internal;
};

struct Router::Link
{
    std::uint32_t slot = 0;
    Endpoint endpoint;

    std::mutex mu; ///< guards up + pending
    bool up = false;
    Fd fd;
    std::mutex write_mu;
    std::unordered_map<std::uint64_t, PendingCall> pending;
    std::thread reader;
};

Router::Router(RouterOptions options)
    : options_(std::move(options)), ring_(options_.vnodes)
{
    listen_fd_ = listenTcp(options_.host, options_.port);
    port_ = localPort(listen_fd_.get());
    for (std::size_t i = 0; i < options_.workers.size(); ++i) {
        auto link = std::make_unique<Link>();
        link->slot = static_cast<std::uint32_t>(i);
        link->endpoint = options_.workers[i];
        links_.push_back(std::move(link));
        ring_.addSlot(static_cast<std::uint32_t>(i));
    }
    if (options_.standby.port != 0) {
        auto link = std::make_unique<Link>();
        link->slot = static_cast<std::uint32_t>(links_.size());
        link->endpoint = options_.standby;
        links_.push_back(std::move(link));
        // The standby joins the ring only at failover.
    }
}

Router::~Router() { stop(); }

void
Router::connectLink(Link &link)
{
    link.fd = connectTcp(link.endpoint.host, link.endpoint.port);
    link.up = true;
    link.reader = std::thread(&Router::linkReader, this, &link);
}

void
Router::start()
{
    for (auto &link : links_)
        connectLink(*link);
    accept_thread_ = std::thread(&Router::acceptLoop, this);
}

void
Router::stop()
{
    if (stopping_.exchange(true))
        return;
    listen_fd_.shutdownBoth();
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto &c : conns_)
            c->fd.shutdownBoth();
    }
    for (auto &link : links_)
        link->fd.shutdownBoth();
    if (accept_thread_.joinable())
        accept_thread_.join();
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    for (auto &link : links_)
        if (link->reader.joinable())
            link->reader.join();
}

Router::Link *
Router::linkForSlot(std::uint32_t slot)
{
    if (slot >= links_.size())
        return nullptr;
    return links_[slot].get();
}

std::uint32_t
Router::slotForSession(std::uint64_t gsid)
{
    // Caller holds place_mu_.
    auto it = placements_.find(gsid);
    if (it != placements_.end())
        return it->second;
    std::uint32_t slot = ring_.slotFor(gsid);
    placements_.emplace(gsid, slot);
    return slot;
}

void
Router::finishOutstanding(std::uint64_t gsid)
{
    std::lock_guard<std::mutex> lk(place_mu_);
    auto it = outstanding_.find(gsid);
    if (it == outstanding_.end())
        return;
    if (--it->second == 0) {
        outstanding_.erase(it);
        quiesced_cv_.notify_all();
    }
}

void
Router::replyError(const std::shared_ptr<ClientConn> &client,
                   std::uint64_t req_id, std::uint64_t gsid,
                   const std::string &what)
{
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    if (!client)
        return;
    sendFrame(client->fd.get(),
              Frame::text(Msg::Error, req_id, gsid, what),
              &client->write_mu);
}

bool
Router::sendOnLink(Link &link, Frame frame, PendingCall pending,
                   std::uint64_t *out_req_id)
{
    const std::uint64_t req_id =
        next_req_id_.fetch_add(1, std::memory_order_relaxed);
    if (out_req_id)
        *out_req_id = req_id;
    frame.req_id = req_id;
    {
        std::lock_guard<std::mutex> lk(link.mu);
        if (!link.up)
            return false;
        link.pending.emplace(req_id, std::move(pending));
    }
    if (!sendFrame(link.fd.get(), frame, &link.write_mu)) {
        std::lock_guard<std::mutex> lk(link.mu);
        link.pending.erase(req_id);
        return false;
    }
    return true;
}

Frame
Router::call(Link &link, Frame frame)
{
    auto promise = std::make_shared<std::promise<Frame>>();
    std::future<Frame> future = promise->get_future();
    PendingCall pending;
    pending.internal = promise;
    pending.gsid = frame.gsid;
    std::uint64_t req_id = 0;
    if (!sendOnLink(link, std::move(frame), std::move(pending),
                    &req_id))
        throw ClusterError("slot " + std::to_string(link.slot) +
                           " is down");
    if (future.wait_for(std::chrono::seconds(60)) !=
        std::future_status::ready) {
        std::lock_guard<std::mutex> lk(link.mu);
        link.pending.erase(req_id);
        throw ClusterError("slot " + std::to_string(link.slot) +
                           " timed out");
    }
    Frame reply = future.get();
    if (reply.msg == Msg::Error)
        throw ClusterError("slot " + std::to_string(link.slot) +
                           ": " + reply.bodyText());
    return reply;
}

void
Router::forwardSubmit(const std::shared_ptr<ClientConn> &client,
                      const Frame &frame)
{
    std::uint32_t slot;
    {
        std::lock_guard<std::mutex> lk(place_mu_);
        auto mig = migrating_.find(frame.gsid);
        if (mig != migrating_.end()) {
            // Quiesced for migration: park the request; the migrate
            // flow replays the buffer against the target.
            mig->second.emplace_back(client, frame);
            return;
        }
        slot = slotForSession(frame.gsid);
        ++outstanding_[frame.gsid];
    }
    Link *link = linkForSlot(slot);
    PendingCall pending;
    pending.client = client;
    pending.client_req_id = frame.req_id;
    pending.gsid = frame.gsid;
    pending.tracked = true;
    // Counted before the send: the worker's reply (and a stats
    // scrape racing it) may arrive before this thread resumes.
    n_forwarded_.fetch_add(1, std::memory_order_relaxed);
    if (!link || !sendOnLink(*link, frame, std::move(pending))) {
        n_forwarded_.fetch_sub(1, std::memory_order_relaxed);
        finishOutstanding(frame.gsid);
        replyError(client, frame.req_id, frame.gsid,
                   "slot " + std::to_string(slot) + " is down");
        return;
    }
}

void
Router::linkReader(Link *link)
{
    Frame frame;
    for (;;) {
        bool ok;
        try {
            ok = recvFrame(link->fd.get(), frame);
        } catch (const ClusterError &) {
            ok = false;
        }
        if (!ok)
            break;
        PendingCall pending;
        bool found = false;
        {
            std::lock_guard<std::mutex> lk(link->mu);
            auto it = link->pending.find(frame.req_id);
            if (it != link->pending.end()) {
                pending = std::move(it->second);
                link->pending.erase(it);
                found = true;
            }
        }
        if (!found)
            continue; // orphaned reply (client or call gave up)
        if (pending.tracked)
            finishOutstanding(pending.gsid);
        if (pending.internal) {
            pending.internal->set_value(frame);
            continue;
        }
        if (pending.client) {
            Frame out = frame;
            out.req_id = pending.client_req_id;
            sendFrame(pending.client->fd.get(), out,
                      &pending.client->write_mu);
            if (frame.msg == Msg::Error)
                n_errors_.fetch_add(1, std::memory_order_relaxed);
            else
                n_replies_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    failover(*link);
}

void
Router::failover(Link &link)
{
    std::unordered_map<std::uint64_t, PendingCall> orphans;
    {
        std::lock_guard<std::mutex> lk(link.mu);
        if (!link.up)
            return;
        link.up = false;
        orphans.swap(link.pending);
    }
    // Outstanding requests on the dead link fail typed — clients see
    // Error, internal callers see ClusterError — never a hang.
    for (auto &[req_id, pending] : orphans) {
        if (pending.tracked)
            finishOutstanding(pending.gsid);
        if (pending.internal) {
            pending.internal->set_exception(
                std::make_exception_ptr(ClusterError(
                    "slot " + std::to_string(link.slot) + " died")));
        } else {
            replyError(pending.client, pending.client_req_id,
                       pending.gsid,
                       "slot " + std::to_string(link.slot) +
                           " died");
        }
    }
    if (stopping_.load())
        return;

    const std::uint32_t standby_slot =
        static_cast<std::uint32_t>(options_.workers.size());
    Link *standby = options_.standby.port != 0
                        ? linkForSlot(standby_slot)
                        : nullptr;
    const bool standby_usable = standby != nullptr &&
                                standby != &link &&
                                [&] {
                                    std::lock_guard<std::mutex> lk(
                                        standby->mu);
                                    return standby->up;
                                }();

    // Collect the dead slot's sessions and rewire the ring.
    std::vector<std::uint64_t> failed_sessions;
    {
        std::lock_guard<std::mutex> lk(place_mu_);
        ring_.removeSlot(link.slot);
        if (standby_usable && !ring_.hasSlot(standby_slot))
            ring_.addSlot(standby_slot);
        for (const auto &[gsid, slot] : placements_)
            if (slot == link.slot)
                failed_sessions.push_back(gsid);
    }
    if (!standby_usable) {
        // No survivor can hold the state; drop the placements so
        // future submits re-hash (fresh sessions) rather than hang.
        std::lock_guard<std::mutex> lk(place_mu_);
        for (std::uint64_t gsid : failed_sessions)
            placements_.erase(gsid);
        return;
    }

    n_failovers_.fetch_add(1, std::memory_order_relaxed);
    for (std::uint64_t gsid : failed_sessions) {
        Frame open;
        open.msg = Msg::OpenShard;
        open.gsid = gsid;
        open.body.push_back(1); // restore
        try {
            Frame info = call(*standby, std::move(open));
            n_failover_replayed_.fetch_add(
                jsonUint(info.bodyText(), "wal_records_replayed"),
                std::memory_order_relaxed);
            n_failover_sessions_.fetch_add(
                1, std::memory_order_relaxed);
        } catch (const ClusterError &) {
            continue; // standby died too; nothing left to do
        }
        std::lock_guard<std::mutex> lk(place_mu_);
        placements_[gsid] = standby_slot;
        ring_.pin(gsid, standby_slot);
    }
}

std::string
Router::migrate(std::uint64_t gsid, std::uint32_t target_slot)
{
    Link *target = linkForSlot(target_slot);
    if (!target)
        throw ClusterError("no such slot " +
                           std::to_string(target_slot));
    std::uint32_t source_slot;
    {
        std::unique_lock<std::mutex> lk(place_mu_);
        if (!ring_.hasSlot(target_slot))
            throw ClusterError("slot " +
                               std::to_string(target_slot) +
                               " is not in the ring");
        if (migrating_.count(gsid) != 0)
            throw ClusterError("session already migrating");
        source_slot = slotForSession(gsid);
        if (source_slot == target_slot)
            return "{\"gsid\": " + std::to_string(gsid) +
                   ", \"migrated\": false, \"reason\": "
                   "\"already there\"}";
        migrating_.emplace(gsid, decltype(migrating_)::mapped_type{});

        // Quiesce: wait out every in-flight request of this session.
        const bool quiet = quiesced_cv_.wait_for(
            lk,
            std::chrono::milliseconds(options_.quiesce_timeout_ms),
            [&] { return outstanding_.count(gsid) == 0; });
        if (!quiet) {
            migrating_.erase(gsid); // buffered entries: none yet
            throw ClusterError("session did not quiesce");
        }
    }

    auto unwind = [&](const std::string &why) -> std::string {
        // Replay anything buffered back onto the source and unmark.
        std::lock_guard<std::mutex> lk(place_mu_);
        migrating_.erase(gsid);
        throw ClusterError(why);
    };

    // Source side: drain + checkpoint + destroy. A dead source link
    // is fine — that is the failover-then-migrate shape, and the
    // state on disk is whatever shipping/checkpointing left.
    Link *source = linkForSlot(source_slot);
    if (source) {
        Frame drop;
        drop.msg = Msg::DropShard;
        drop.gsid = gsid;
        drop.body.push_back(1);
        try {
            call(*source, std::move(drop));
        } catch (const ClusterError &) {
            bool up;
            {
                std::lock_guard<std::mutex> lk(source->mu);
                up = source->up;
            }
            if (up)
                return unwind("source drop failed");
            // else: dead source, proceed to restore on the target
        }
    }

    Frame open;
    open.msg = Msg::OpenShard;
    open.gsid = gsid;
    open.body.push_back(1); // restore
    std::string info;
    try {
        info = call(*target, std::move(open)).bodyText();
    } catch (const ClusterError &e) {
        return unwind(std::string("target restore failed: ") +
                      e.what());
    }

    // Flip the ring entry, then replay the parked submits in order.
    // The migrating_ flag stays up during the replay so late
    // arrivals keep appending behind the parked ones.
    {
        std::lock_guard<std::mutex> lk(place_mu_);
        placements_[gsid] = target_slot;
        ring_.pin(gsid, target_slot);
    }
    for (;;) {
        std::vector<std::pair<std::shared_ptr<ClientConn>, Frame>>
            parked;
        {
            std::lock_guard<std::mutex> lk(place_mu_);
            auto it = migrating_.find(gsid);
            if (it->second.empty()) {
                migrating_.erase(it);
                break;
            }
            parked.swap(it->second);
        }
        for (auto &[client, frame] : parked) {
            PendingCall pending;
            pending.client = client;
            pending.client_req_id = frame.req_id;
            pending.gsid = gsid;
            pending.tracked = true;
            {
                std::lock_guard<std::mutex> lk(place_mu_);
                ++outstanding_[gsid];
            }
            n_forwarded_.fetch_add(1, std::memory_order_relaxed);
            if (!sendOnLink(*target, frame, std::move(pending))) {
                n_forwarded_.fetch_sub(1,
                                       std::memory_order_relaxed);
                finishOutstanding(gsid);
                replyError(client, frame.req_id, gsid,
                           "target died during migration");
            }
        }
    }
    n_migrations_.fetch_add(1, std::memory_order_relaxed);
    return info;
}

std::string
Router::scrapeWorker(std::uint32_t slot, ScrapeKind kind)
{
    Link *link = linkForSlot(slot);
    if (!link)
        throw ClusterError("no such slot " + std::to_string(slot));
    Frame scrape;
    scrape.msg = Msg::Scrape;
    scrape.body.push_back(static_cast<std::uint8_t>(kind));
    return call(*link, std::move(scrape)).bodyText();
}

void
Router::acceptLoop()
{
    for (;;) {
        int fd = acceptTcp(listen_fd_.get());
        if (fd < 0)
            return;
        auto client = std::make_shared<ClientConn>();
        client->fd = Fd(fd);
        std::lock_guard<std::mutex> lk(conns_mu_);
        if (stopping_.load())
            return;
        conns_.insert(client);
        conn_threads_.emplace_back(&Router::serveClient, this,
                                   client);
    }
}

void
Router::serveClient(std::shared_ptr<ClientConn> client)
{
    Frame frame;
    for (;;) {
        bool ok;
        try {
            ok = recvFrame(client->fd.get(), frame);
        } catch (const ClusterError &e) {
            sendFrame(client->fd.get(),
                      Frame::text(Msg::Error, 0, 0, e.what()),
                      &client->write_mu);
            break;
        }
        if (!ok)
            break;
        switch (frame.msg) {
          case Msg::Submit:
          case Msg::OpenShard:
            forwardSubmit(client, frame);
            break;
          case Msg::Migrate: {
            std::uint32_t target = 0;
            for (std::size_t i = 0;
                 i < 4 && i < frame.body.size(); ++i)
                target |= static_cast<std::uint32_t>(frame.body[i])
                          << (8 * i);
            std::string text;
            try {
                text = migrate(frame.gsid, target);
            } catch (const std::exception &e) {
                replyError(client, frame.req_id, frame.gsid,
                           e.what());
                break;
            }
            sendFrame(client->fd.get(),
                      Frame::text(Msg::ShardInfo, frame.req_id,
                                  frame.gsid, text),
                      &client->write_mu);
            break;
          }
          case Msg::Scrape: {
            const ScrapeKind kind =
                !frame.body.empty() &&
                        frame.body[0] ==
                            static_cast<std::uint8_t>(
                                ScrapeKind::Metrics)
                    ? ScrapeKind::Metrics
                    : ScrapeKind::StatsJson;
            std::string text;
            try {
                if (frame.gsid == ~0ULL)
                    text = "{" + extraJson() + "}";
                else
                    text = scrapeWorker(
                        static_cast<std::uint32_t>(frame.gsid),
                        kind);
            } catch (const std::exception &e) {
                replyError(client, frame.req_id, frame.gsid,
                           e.what());
                break;
            }
            sendFrame(client->fd.get(),
                      Frame::text(Msg::ScrapeText, frame.req_id,
                                  frame.gsid, text),
                      &client->write_mu);
            break;
          }
          case Msg::Ping: {
            Frame pong;
            pong.msg = Msg::Pong;
            pong.req_id = frame.req_id;
            sendFrame(client->fd.get(), pong, &client->write_mu);
            break;
          }
          default:
            replyError(client, frame.req_id, frame.gsid,
                       std::string("unexpected ") +
                           msgName(frame.msg));
            break;
        }
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(client);
}

RouterStats
Router::stats() const
{
    RouterStats st;
    st.forwarded = n_forwarded_.load(std::memory_order_relaxed);
    st.replies = n_replies_.load(std::memory_order_relaxed);
    st.errors = n_errors_.load(std::memory_order_relaxed);
    st.failovers = n_failovers_.load(std::memory_order_relaxed);
    st.failover_sessions =
        n_failover_sessions_.load(std::memory_order_relaxed);
    st.failover_replayed_frames =
        n_failover_replayed_.load(std::memory_order_relaxed);
    st.migrations = n_migrations_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(place_mu_);
        st.sessions = placements_.size();
    }
    for (const auto &link : links_) {
        std::lock_guard<std::mutex> lk(link->mu);
        if (link->up)
            ++st.links_up;
    }
    return st;
}

std::string
Router::extraJson() const
{
    RouterStats st = stats();
    std::ostringstream os;
    os << "\"cluster\": {\"forwarded\": " << st.forwarded
       << ", \"replies\": " << st.replies
       << ", \"errors\": " << st.errors
       << ", \"failovers\": " << st.failovers
       << ", \"failover_sessions\": " << st.failover_sessions
       << ", \"failover_replayed_frames\": "
       << st.failover_replayed_frames
       << ", \"migrations\": " << st.migrations
       << ", \"sessions\": " << st.sessions
       << ", \"links\": [";
    for (std::size_t i = 0; i < links_.size(); ++i) {
        bool up;
        {
            std::lock_guard<std::mutex> lk(links_[i]->mu);
            up = links_[i]->up;
        }
        os << (i == 0 ? "" : ", ") << "{\"slot\": " << i
           << ", \"up\": " << (up ? "true" : "false") << "}";
    }
    os << "]}";
    return os.str();
}

std::string
Router::extraExposition() const
{
    RouterStats st = stats();
    std::ostringstream os;
    os << "# HELP psm_router_forwarded_total Requests forwarded.\n"
       << "# TYPE psm_router_forwarded_total counter\n"
       << "psm_router_forwarded_total " << st.forwarded << "\n"
       << "# HELP psm_router_errors_total Error replies to clients.\n"
       << "# TYPE psm_router_errors_total counter\n"
       << "psm_router_errors_total " << st.errors << "\n"
       << "# HELP psm_router_failovers_total Dead links failed over.\n"
       << "# TYPE psm_router_failovers_total counter\n"
       << "psm_router_failovers_total " << st.failovers << "\n"
       << "# HELP psm_router_failover_replayed_frames_total WAL "
          "frames replayed by failover restores.\n"
       << "# TYPE psm_router_failover_replayed_frames_total counter\n"
       << "psm_router_failover_replayed_frames_total "
       << st.failover_replayed_frames << "\n"
       << "# HELP psm_router_migrations_total Live migrations.\n"
       << "# TYPE psm_router_migrations_total counter\n"
       << "psm_router_migrations_total " << st.migrations << "\n"
       << "# HELP psm_router_sessions Known session placements.\n"
       << "# TYPE psm_router_sessions gauge\n"
       << "psm_router_sessions " << st.sessions << "\n"
       << "# HELP psm_router_links_up Worker links currently up.\n"
       << "# TYPE psm_router_links_up gauge\n"
       << "psm_router_links_up " << st.links_up << "\n";
    for (std::size_t i = 0; i < links_.size(); ++i) {
        bool up;
        {
            std::lock_guard<std::mutex> lk(links_[i]->mu);
            up = links_[i]->up;
        }
        os << "psm_router_link_up{slot=\"" << i << "\"} "
           << (up ? 1 : 0) << "\n";
    }
    return os.str();
}

} // namespace psm::cluster
