#include "cluster/protocol.hpp"

#include <cstring>

#include "durable/format.hpp"

namespace psm::cluster {

const char *
msgName(Msg m)
{
    switch (m) {
      case Msg::Submit: return "submit";
      case Msg::Reply: return "reply";
      case Msg::OpenShard: return "open_shard";
      case Msg::ShardInfo: return "shard_info";
      case Msg::DropShard: return "drop_shard";
      case Msg::Scrape: return "scrape";
      case Msg::ScrapeText: return "scrape_text";
      case Msg::Ping: return "ping";
      case Msg::Pong: return "pong";
      case Msg::Error: return "error";
      case Msg::Migrate: return "migrate";
      case Msg::ShipHello: return "ship_hello";
      case Msg::WalFrame: return "wal_frame";
      case Msg::WalSnapshot: return "wal_snapshot";
    }
    return "unknown";
}

namespace {

constexpr std::size_t kPrefixBytes = 1 + 8 + 8; // msg | req_id | gsid

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

bool
sendFrame(int fd, const Frame &frame, std::mutex *write_mu)
{
    const std::size_t payload_len = kPrefixBytes + frame.body.size();
    std::vector<std::uint8_t> buf(8 + payload_len);
    std::uint8_t *payload = buf.data() + 8;
    payload[0] = static_cast<std::uint8_t>(frame.msg);
    putU64(payload + 1, frame.req_id);
    putU64(payload + 9, frame.gsid);
    if (!frame.body.empty())
        std::memcpy(payload + kPrefixBytes, frame.body.data(),
                    frame.body.size());
    putU32(buf.data(), static_cast<std::uint32_t>(payload_len));
    putU32(buf.data() + 4,
           durable::crc32({payload, payload_len}));

    if (write_mu) {
        std::lock_guard<std::mutex> lk(*write_mu);
        return sendAll(fd, buf.data(), buf.size());
    }
    return sendAll(fd, buf.data(), buf.size());
}

bool
recvFrame(int fd, Frame &out)
{
    std::uint8_t head[8];
    if (!recvAll(fd, head, sizeof head))
        return false;
    const std::uint32_t len = getU32(head);
    const std::uint32_t crc = getU32(head + 4);
    if (len < kPrefixBytes || len > kMaxFrameBytes)
        throw ClusterError("frame length " + std::to_string(len) +
                           " out of range");
    std::vector<std::uint8_t> payload(len);
    if (!recvAll(fd, payload.data(), len))
        return false;
    if (durable::crc32({payload.data(), payload.size()}) != crc)
        throw ClusterError("frame CRC mismatch");

    const std::uint8_t msg = payload[0];
    if (msg < static_cast<std::uint8_t>(Msg::Submit) ||
        msg > static_cast<std::uint8_t>(Msg::WalSnapshot))
        throw ClusterError("unknown message type " +
                           std::to_string(msg));
    out.msg = static_cast<Msg>(msg);
    out.req_id = getU64(payload.data() + 1);
    out.gsid = getU64(payload.data() + 9);
    out.body.assign(payload.begin() +
                        static_cast<std::ptrdiff_t>(kPrefixBytes),
                    payload.end());
    return true;
}

} // namespace psm::cluster
