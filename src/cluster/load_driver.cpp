#include "cluster/load_driver.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace psm::cluster {

using Clock = std::chrono::steady_clock;

Client::Client(const std::string &host, std::uint16_t port)
    : fd_(connectTcp(host, port))
{}

Frame
Client::rpc(Frame frame)
{
    frame.req_id = next_req_id_++;
    if (!sendFrame(fd_.get(), frame))
        throw ClusterError("peer closed connection on send");
    Frame reply;
    if (!recvFrame(fd_.get(), reply))
        throw ClusterError("peer closed connection awaiting reply");
    if (reply.msg == Msg::Error)
        throw ClusterError(reply.bodyText());
    return reply;
}

std::uint64_t
Client::sendSubmit(std::uint64_t gsid, const serve::WireRequest &req)
{
    Frame frame;
    frame.msg = Msg::Submit;
    frame.req_id = next_req_id_++;
    frame.gsid = gsid;
    frame.body = serve::encodeRequest(req);
    if (!sendFrame(fd_.get(), frame))
        throw ClusterError("peer closed connection on send");
    return frame.req_id;
}

Client::Reply
Client::readReply()
{
    Frame frame;
    if (!recvFrame(fd_.get(), frame))
        throw ClusterError("peer closed connection awaiting reply");
    Reply r;
    r.req_id = frame.req_id;
    if (frame.msg == Msg::Error) {
        r.error = true;
        r.error_text = frame.bodyText();
        return r;
    }
    r.resp = serve::decodeResponse(frame.body);
    return r;
}

Client::Reply
Client::submit(std::uint64_t gsid, const serve::WireRequest &req)
{
    sendSubmit(gsid, req);
    return readReply();
}

std::string
Client::openShard(std::uint64_t gsid, bool restore)
{
    Frame frame;
    frame.msg = Msg::OpenShard;
    frame.gsid = gsid;
    frame.body.push_back(restore ? 1 : 0);
    return rpc(std::move(frame)).bodyText();
}

std::string
Client::migrate(std::uint64_t gsid, std::uint32_t target_slot)
{
    Frame frame;
    frame.msg = Msg::Migrate;
    frame.gsid = gsid;
    for (int i = 0; i < 4; ++i)
        frame.body.push_back(
            static_cast<std::uint8_t>(target_slot >> (8 * i)));
    return rpc(std::move(frame)).bodyText();
}

std::string
Client::scrape(std::uint64_t slot, ScrapeKind kind)
{
    Frame frame;
    frame.msg = Msg::Scrape;
    frame.gsid = slot;
    frame.body.push_back(static_cast<std::uint8_t>(kind));
    return rpc(std::move(frame)).bodyText();
}

void
Client::ping()
{
    Frame frame;
    frame.msg = Msg::Ping;
    rpc(std::move(frame));
}

namespace {

double
percentileOf(std::vector<double> &lat, double pct)
{
    if (lat.empty())
        return 0.0;
    std::sort(lat.begin(), lat.end());
    // Nearest-rank, like the serve driver's samplePercentile.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(lat.size())));
    if (rank == 0)
        rank = 1;
    return lat[std::min(rank, lat.size()) - 1];
}

/** Per-client accumulator, merged under a mutex at thread exit. */
struct ClientTally
{
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t errors = 0;
    std::vector<ClusterSample> samples;
};

} // namespace

double
windowPercentile(const std::vector<ClusterSample> &samples,
                 double from_ms, double to_ms, double pct,
                 const std::function<bool(std::uint64_t)> &gsid_filter)
{
    std::vector<double> lat;
    for (const ClusterSample &s : samples) {
        if (s.t_ms < from_ms || s.t_ms >= to_ms)
            continue;
        if (gsid_filter && !gsid_filter(s.gsid))
            continue;
        lat.push_back(s.latency_us);
    }
    return percentileOf(lat, pct);
}

ClusterLoadResult
runClusterLoad(const std::shared_ptr<const ops5::Program> &program,
               const ClusterLoadConfig &config)
{
    const ops5::SymbolTable &syms = program->symbols();
    const auto &initial = program->initialWmes();
    if (initial.empty())
        throw ClusterError(
            "cluster load needs a program with initial WMEs "
            "(they are the assert templates)");

    // Lift the templates to wire form once; every client shares them.
    std::vector<serve::WireRequest> templates;
    templates.reserve(initial.size());
    for (const auto &tmpl : initial) {
        serve::WireRequest w;
        w.kind = serve::RequestKind::Assert;
        w.cls = std::string(syms.name(tmpl.cls));
        for (const ops5::Value &v : tmpl.fields)
            w.fields.push_back(serve::WireValue::of(v, syms));
        templates.push_back(std::move(w));
    }
    const auto deadline_us =
        static_cast<std::uint64_t>(config.deadline.count());

    std::mutex merge_mu;
    ClusterLoadResult result;
    const Clock::time_point start = Clock::now();

    auto client_body = [&](std::uint64_t gsid, std::size_t client_ix) {
        ClientTally tally;
        std::unique_ptr<Client> cli;
        auto connect = [&]() -> bool {
            try {
                cli = std::make_unique<Client>(config.host,
                                               config.port);
                return true;
            } catch (const ClusterError &) {
                return false;
            }
        };
        if (!connect()) {
            ++tally.errors;
            std::lock_guard<std::mutex> lk(merge_mu);
            result.errors += tally.errors;
            return;
        }

        // One submit round-trip with sampling; returns false when the
        // router itself is gone (after one reconnect attempt).
        auto roundtrip = [&](const serve::WireRequest &w,
                             serve::WireResponse *out) -> bool {
            for (int attempt = 0; attempt < 2; ++attempt) {
                const Clock::time_point t0 = Clock::now();
                try {
                    Client::Reply r = cli->submit(gsid, w);
                    if (r.error) {
                        // Routed error: a shard died under us. The
                        // next request re-resolves placement, so just
                        // count it and move on.
                        ++tally.errors;
                        return true;
                    }
                    const Clock::time_point t1 = Clock::now();
                    if (!r.resp.accepted()) {
                        ++tally.rejected;
                        return true;
                    }
                    ++tally.completed;
                    if (r.resp.deadline_expired)
                        ++tally.expired;
                    ClusterSample s;
                    s.t_ms = std::chrono::duration<double,
                                                   std::milli>(
                                 t1 - start)
                                 .count();
                    s.latency_us =
                        std::chrono::duration<double, std::micro>(
                            t1 - t0)
                            .count();
                    s.gsid = gsid;
                    tally.samples.push_back(s);
                    if (out)
                        *out = r.resp;
                    return true;
                } catch (const ClusterError &) {
                    ++tally.errors;
                    if (!connect())
                        return false;
                }
            }
            return false;
        };

        // Paced arrivals: each client ticks at its own rate, offset
        // by client index so clients don't stampede in phase.
        Clock::time_point next_tick = start;
        std::chrono::nanoseconds interval{0};
        if (config.arrival_rate_hz > 0.0) {
            interval = std::chrono::nanoseconds(static_cast<long long>(
                1e9 / config.arrival_rate_hz));
            next_tick = start + interval * static_cast<long>(
                                    client_ix % 16);
        }
        auto pace = [&]() {
            if (interval.count() == 0)
                return;
            std::this_thread::sleep_until(next_tick);
            next_tick += interval;
            if (next_tick < Clock::now()) // too far behind: resync
                next_tick = Clock::now();
        };

        std::vector<ops5::TimeTag> handles;
        for (std::size_t it = 0; it < config.iterations; ++it) {
            handles.clear();
            for (std::size_t a = 0; a < config.asserts_per_iteration;
                 ++a) {
                pace();
                serve::WireRequest w =
                    templates[(it + a) % templates.size()];
                w.deadline_us = deadline_us;
                serve::WireResponse resp;
                if (!roundtrip(w, &resp))
                    return; // router unreachable: give up
                if (resp.kind == serve::RequestKind::Assert &&
                    resp.accepted() && !resp.deadline_expired &&
                    resp.tag != 0)
                    handles.push_back(resp.tag);
            }
            if (config.run_cycles > 0) {
                pace();
                serve::WireRequest w;
                w.kind = serve::RequestKind::Run;
                w.max_cycles = config.run_cycles;
                w.deadline_us = deadline_us;
                if (!roundtrip(w, nullptr))
                    return;
            }
            for (ops5::TimeTag tag : handles) {
                pace();
                serve::WireRequest w;
                w.kind = serve::RequestKind::Retract;
                w.tag = tag;
                w.deadline_us = deadline_us;
                if (!roundtrip(w, nullptr))
                    return;
            }
        }
        std::lock_guard<std::mutex> lk(merge_mu);
        result.completed += tally.completed;
        result.rejected += tally.rejected;
        result.expired += tally.expired;
        result.errors += tally.errors;
        result.samples.insert(result.samples.end(),
                              tally.samples.begin(),
                              tally.samples.end());
    };

    std::vector<std::thread> clients;
    clients.reserve(config.sessions * config.clients_per_session);
    std::size_t client_ix = 0;
    for (std::size_t s = 0; s < config.sessions; ++s)
        for (std::size_t c = 0; c < config.clients_per_session; ++c)
            clients.emplace_back(client_body, config.first_gsid + s,
                                 client_ix++);
    for (std::thread &t : clients)
        t.join();

    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.elapsed_seconds = elapsed;
    result.requests_per_sec =
        elapsed > 0.0
            ? static_cast<double>(result.completed + result.rejected) /
                  elapsed
            : 0.0;

    std::vector<double> lat;
    lat.reserve(result.samples.size());
    for (const ClusterSample &s : result.samples)
        lat.push_back(s.latency_us);
    if (!lat.empty()) {
        result.max_us = *std::max_element(lat.begin(), lat.end());
        result.p50_us = percentileOf(lat, 50.0);
        result.p95_us = percentileOf(lat, 95.0);
        result.p99_us = percentileOf(lat, 99.0);
    }
    return result;
}

} // namespace psm::cluster
