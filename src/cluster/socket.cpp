#include "cluster/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace psm::cluster {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

sockaddr_in
makeAddr(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw ClusterError("bad IPv4 address '" + host + "'");
    return addr;
}

} // namespace

void
Fd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

void
Fd::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Fd
listenTcp(const std::string &host, std::uint16_t port, int backlog)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throw ClusterError("socket: " + errnoText());
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = makeAddr(host, port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        throw ClusterError("bind " + host + ":" +
                           std::to_string(port) + ": " + errnoText());
    if (::listen(fd.get(), backlog) != 0)
        throw ClusterError("listen: " + errnoText());
    return fd;
}

std::uint16_t
localPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0)
        throw ClusterError("getsockname: " + errnoText());
    return ntohs(addr.sin_port);
}

int
acceptTcp(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof one);
            return fd;
        }
        if (errno == EINTR)
            continue;
        return -1;
    }
}

Fd
connectTcp(const std::string &host, std::uint16_t port,
           int timeout_ms)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        throw ClusterError("socket: " + errnoText());
    sockaddr_in addr = makeAddr(host, port);

    // Non-blocking connect + poll gives the bounded wait.
    int flags = ::fcntl(fd.get(), F_GETFL, 0);
    ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    if (rc != 0 && errno != EINPROGRESS)
        throw ClusterError("connect " + host + ":" +
                           std::to_string(port) + ": " + errnoText());
    if (rc != 0) {
        pollfd pfd{fd.get(), POLLOUT, 0};
        rc = ::poll(&pfd, 1, timeout_ms);
        if (rc == 0)
            throw ClusterError("connect " + host + ":" +
                               std::to_string(port) + ": timed out");
        if (rc < 0)
            throw ClusterError("poll: " + errnoText());
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0)
            throw ClusterError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
    }
    ::fcntl(fd.get(), F_SETFL, flags);
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool
sendAll(int fd, const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    while (n > 0) {
        ssize_t wrote = ::send(fd, p, n, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += wrote;
        n -= static_cast<std::size_t>(wrote);
    }
    return true;
}

bool
recvAll(int fd, void *data, std::size_t n)
{
    auto *p = static_cast<std::uint8_t *>(data);
    while (n > 0) {
        ssize_t got = ::recv(fd, p, n, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false;
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

} // namespace psm::cluster
