#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace psm::cluster {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

HashRing::HashRing(std::size_t vnodes)
    : vnodes_(std::max<std::size_t>(vnodes, 1))
{}

void
HashRing::addSlot(std::uint32_t slot)
{
    if (!slots_.insert(slot).second)
        return;
    points_.reserve(points_.size() + vnodes_);
    for (std::size_t v = 0; v < vnodes_; ++v) {
        // Distinct point per (slot, vnode), salted so the point
        // domain never coincides with the key domain: slot 0's
        // unsalted points would be mix64(0..vnodes), the exact
        // hashes of small gsids, and every such session would land
        // on its own point — all on slot 0.
        std::uint64_t h =
            mix64(0xcb5af53ae3aaac31ULL ^
                  ((static_cast<std::uint64_t>(slot) << 20) | v));
        points_.emplace_back(h, slot);
    }
    std::sort(points_.begin(), points_.end());
}

void
HashRing::removeSlot(std::uint32_t slot)
{
    if (slots_.erase(slot) == 0)
        return;
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [slot](const auto &p) {
                                     return p.second == slot;
                                 }),
                  points_.end());
    for (auto it = pins_.begin(); it != pins_.end();) {
        if (it->second == slot)
            it = pins_.erase(it);
        else
            ++it;
    }
}

bool
HashRing::hasSlot(std::uint32_t slot) const
{
    return slots_.count(slot) != 0;
}

void
HashRing::pin(std::uint64_t gsid, std::uint32_t slot)
{
    if (!hasSlot(slot))
        throw std::logic_error("pin to unknown slot " +
                               std::to_string(slot));
    pins_[gsid] = slot;
}

void
HashRing::unpin(std::uint64_t gsid)
{
    pins_.erase(gsid);
}

bool
HashRing::pinned(std::uint64_t gsid) const
{
    return pins_.count(gsid) != 0;
}

std::uint32_t
HashRing::slotFor(std::uint64_t gsid) const
{
    auto pin = pins_.find(gsid);
    if (pin != pins_.end())
        return pin->second;
    if (points_.empty())
        throw std::logic_error("hash ring has no slots");
    const std::uint64_t h = mix64(gsid);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const auto &p, std::uint64_t v) { return p.first < v; });
    if (it == points_.end())
        it = points_.begin(); // wrap: the ring is circular
    return it->second;
}

} // namespace psm::cluster
