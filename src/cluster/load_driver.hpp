/**
 * @file
 * Cluster client and load driver.
 *
 * Client: a blocking connection to the router (or directly to a
 * worker — same protocol) with synchronous RPCs and a pipelined
 * submit path. Submit outcomes are three-valued: a typed WireResponse
 * (possibly an admission rejection), a routed Error (e.g. "slot 2
 * died" mid-failover), or transport loss — the load driver counts
 * all three rather than conflating them, because E20's failover
 * experiment is precisely about their proportions over time.
 *
 * Load driver: extends the serve layer's closed/paced mix across the
 * process boundary. Each client thread owns one connection, is bound
 * to one global session id, and plays the E15 iteration (assert
 * burst → optional Run → retract by tag). Every response is recorded
 * as a timestamped sample so callers can compute windowed
 * percentiles — p99 before vs after a shard kill — not just
 * whole-run aggregates.
 */

#ifndef PSM_CLUSTER_LOAD_DRIVER_HPP
#define PSM_CLUSTER_LOAD_DRIVER_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/protocol.hpp"
#include "cluster/socket.hpp"
#include "ops5/production.hpp"
#include "serve/wire.hpp"

namespace psm::cluster {

/** One blocking protocol connection. Not thread safe. */
class Client
{
  public:
    Client(const std::string &host, std::uint16_t port);

    /** Outcome of one submit (or pipelined reply). */
    struct Reply
    {
        std::uint64_t req_id = 0;
        bool error = false; ///< routed Error (dead slot, bad frame)
        std::string error_text;
        serve::WireResponse resp; ///< valid when !error
    };

    /** Synchronous submit round-trip. ClusterError on transport
     *  loss; routed errors come back in the Reply. */
    Reply submit(std::uint64_t gsid, const serve::WireRequest &req);

    /** Pipelined path: send now, collect with readReply() later
     *  (replies for one gsid arrive in send order). Returns the
     *  req_id to correlate. ClusterError on transport loss. */
    std::uint64_t sendSubmit(std::uint64_t gsid,
                             const serve::WireRequest &req);
    Reply readReply();

    /** Ensures a shard exists (restore = warm-start from existing
     *  state); returns the worker's ShardInfo JSON. */
    std::string openShard(std::uint64_t gsid, bool restore);

    /** Live-migrates a session (router only). Returns ShardInfo. */
    std::string migrate(std::uint64_t gsid, std::uint32_t target_slot);

    /** Scrapes one worker slot, or the router itself with
     *  slot == kRouterScrape. */
    static constexpr std::uint64_t kRouterScrape = ~0ULL;
    std::string scrape(std::uint64_t slot, ScrapeKind kind);

    void ping();

  private:
    Frame rpc(Frame frame);

    Fd fd_;
    std::uint64_t next_req_id_ = 1;
};

struct ClusterLoadConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::size_t sessions = 2;      ///< gsids first_gsid..+sessions-1
    std::uint64_t first_gsid = 1;
    std::size_t clients_per_session = 1;
    std::size_t iterations = 100; ///< per client
    std::size_t asserts_per_iteration = 4;
    std::uint64_t run_cycles = 0; ///< 0 = no Run per iteration

    std::chrono::microseconds deadline{0};
    double arrival_rate_hz = 0.0; ///< per client; 0 = closed loop
};

/** One response, stamped relative to load start. */
struct ClusterSample
{
    double t_ms = 0.0;
    double latency_us = 0.0;
    std::uint64_t gsid = 0;
};

struct ClusterLoadResult
{
    double elapsed_seconds = 0.0;
    std::uint64_t completed = 0; ///< typed responses received
    std::uint64_t rejected = 0;  ///< admission rejections
    std::uint64_t expired = 0;   ///< deadline-expired completions
    std::uint64_t errors = 0;    ///< routed errors + transport loss
    double requests_per_sec = 0.0;

    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;

    std::vector<ClusterSample> samples;
};

/**
 * Percentile of sample latencies within [from_ms, to_ms), optionally
 * restricted by a gsid filter (nullptr = all). The E20 harness uses
 * this for "surviving shards' p99 after the kill".
 */
double windowPercentile(
    const std::vector<ClusterSample> &samples, double from_ms,
    double to_ms, double pct,
    const std::function<bool(std::uint64_t)> &gsid_filter = {});

/** Runs the load against a router endpoint. The program supplies the
 *  request vocabulary (its initial WMEs are the class/field
 *  templates), exactly like the in-process driver. */
ClusterLoadResult
runClusterLoad(const std::shared_ptr<const ops5::Program> &program,
               const ClusterLoadConfig &config);

} // namespace psm::cluster

#endif // PSM_CLUSTER_LOAD_DRIVER_HPP
