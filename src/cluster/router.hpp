/**
 * @file
 * Cluster router: the front-end process that owns session placement.
 *
 * Clients speak the same framed protocol as workers; the router
 * switches Submit frames on the gsid prefix without decoding bodies
 * (it is program-agnostic by construction), multiplexing every
 * session onto one connection per worker and correlating replies by
 * re-written req_id.
 *
 * Placement: a consistent-hash ring over worker slots, plus a pin
 * map for sessions that migration moved off their ring position.
 * Failover re-points a dead slot's traffic at the standby:
 *
 *   1. the worker link's reader sees EOF/error (SIGKILL closes the
 *      socket) and marks the link down;
 *   2. every pending request on that link is answered with Error —
 *      typed failure, never a hang;
 *   3. every gsid placed on the dead slot is re-opened on the
 *      standby with restore=true (bounded replay from the shipped
 *      snapshot + frames) and pinned there;
 *   4. the ring swaps the dead slot for the standby slot, so new
 *      sessions hash onto the survivor set.
 *
 * Live migration of one session: quiesce (buffer new submits, wait
 * out in-flight ones), DropShard on the source (drain + checkpoint),
 * OpenShard(restore) on the target, pin the ring entry, replay the
 * buffer. Requests admitted before the migration complete on the
 * source; requests buffered during it complete on the target; none
 * are dropped.
 */

#ifndef PSM_CLUSTER_ROUTER_HPP
#define PSM_CLUSTER_ROUTER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/protocol.hpp"
#include "cluster/socket.hpp"

namespace psm::cluster {

struct Endpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

struct RouterOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< client listen port; 0 = ephemeral

    /** Worker endpoints; index = ring slot. */
    std::vector<Endpoint> workers;

    /** Standby endpoint (slot = workers.size()); port 0 = none. */
    Endpoint standby{};

    std::size_t vnodes = 64;

    /** Milliseconds to wait for a session to quiesce in migrate(). */
    int quiesce_timeout_ms = 30000;
};

/** Router-level counters (exposed via /stats.json extras). */
struct RouterStats
{
    std::uint64_t forwarded = 0;
    std::uint64_t replies = 0;
    std::uint64_t errors = 0;    ///< Error replies sent to clients
    std::uint64_t failovers = 0; ///< dead links failed over
    std::uint64_t failover_sessions = 0;
    std::uint64_t failover_replayed_frames = 0;
    std::uint64_t migrations = 0;
    std::size_t sessions = 0; ///< placements known
    std::size_t links_up = 0;
};

class Router
{
  public:
    explicit Router(RouterOptions options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    std::uint16_t port() const { return port_; }

    /** Connects worker links and starts serving (background). */
    void start();
    void stop();

    /**
     * Migrates @p gsid to @p target_slot (quiesce → drop → restore →
     * pin). Returns the target's ShardInfo JSON. ClusterError when
     * the target is down or quiescing times out.
     */
    std::string migrate(std::uint64_t gsid, std::uint32_t target_slot);

    /** Proxies a Scrape to one worker slot. ClusterError when the
     *  slot is down. */
    std::string scrapeWorker(std::uint32_t slot, ScrapeKind kind);

    RouterStats stats() const;

    /** Cluster overview as `"key": value` JSON members (the
     *  MetricsHub extra-JSON contract). */
    std::string extraJson() const;

    /** Cluster overview as exposition text lines. */
    std::string extraExposition() const;

  private:
    struct ClientConn;
    struct PendingCall;
    struct Link;

    void acceptLoop();
    void serveClient(std::shared_ptr<ClientConn> client);
    void linkReader(Link *link);
    void connectLink(Link &link);
    void failover(Link &link);
    void forwardSubmit(const std::shared_ptr<ClientConn> &client,
                       const Frame &frame);
    bool sendOnLink(Link &link, Frame frame, PendingCall pending,
                    std::uint64_t *out_req_id = nullptr);
    Frame call(Link &link, Frame frame);
    std::uint32_t slotForSession(std::uint64_t gsid);
    Link *linkForSlot(std::uint32_t slot);
    void replyError(const std::shared_ptr<ClientConn> &client,
                    std::uint64_t req_id, std::uint64_t gsid,
                    const std::string &what);
    void finishOutstanding(std::uint64_t gsid);

    RouterOptions options_;
    Fd listen_fd_;
    std::uint16_t port_ = 0;

    std::vector<std::unique_ptr<Link>> links_; ///< index = slot

    mutable std::mutex place_mu_;
    HashRing ring_;
    std::unordered_map<std::uint64_t, std::uint32_t> placements_;
    std::unordered_map<std::uint64_t, std::uint64_t> outstanding_;
    std::condition_variable quiesced_cv_;
    /** Sessions mid-migration; their submits buffer here. */
    std::map<std::uint64_t,
             std::vector<std::pair<std::shared_ptr<ClientConn>,
                                   Frame>>>
        migrating_;

    std::atomic<std::uint64_t> next_req_id_{1};
    std::atomic<std::uint64_t> n_forwarded_{0};
    std::atomic<std::uint64_t> n_replies_{0};
    std::atomic<std::uint64_t> n_errors_{0};
    std::atomic<std::uint64_t> n_failovers_{0};
    std::atomic<std::uint64_t> n_failover_sessions_{0};
    std::atomic<std::uint64_t> n_failover_replayed_{0};
    std::atomic<std::uint64_t> n_migrations_{0};

    std::mutex conns_mu_;
    std::set<std::shared_ptr<ClientConn>> conns_;
    std::vector<std::thread> conn_threads_;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};
};

} // namespace psm::cluster

#endif // PSM_CLUSTER_ROUTER_HPP
