/**
 * @file
 * Thin TCP plumbing for the cluster layer: listen/connect/accept and
 * full-length send/recv. Everything is blocking; the cluster layer
 * spends a thread per connection (connection counts here are small —
 * one router, a handful of workers — so thread-per-connection beats
 * an event loop on simplicity with no measurable cost).
 */

#ifndef PSM_CLUSTER_SOCKET_HPP
#define PSM_CLUSTER_SOCKET_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace psm::cluster {

/** Any cluster-layer failure: socket I/O, protocol corruption, or a
 *  peer speaking the wrong protocol. */
class ClusterError : public std::runtime_error
{
  public:
    explicit ClusterError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Move-only owning file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    Fd(Fd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset(int fd = -1);

    /** shutdown(2) both directions — unblocks a reader in another
     *  thread without closing the descriptor under it. */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Opens a listening TCP socket (SO_REUSEADDR). Port 0 binds an
 *  ephemeral port — read it back with localPort. ClusterError on
 *  failure. */
Fd listenTcp(const std::string &host, std::uint16_t port,
             int backlog = 64);

/** The port a socket is actually bound to. */
std::uint16_t localPort(int fd);

/** Accepts one connection; -1 when the listener was shut down. */
int acceptTcp(int listen_fd);

/** Connects with a bounded wait. ClusterError on failure/timeout. */
Fd connectTcp(const std::string &host, std::uint16_t port,
              int timeout_ms = 5000);

/** Writes all @p n bytes; false when the peer is gone. */
bool sendAll(int fd, const void *data, std::size_t n);

/** Reads exactly @p n bytes; false on EOF or error (a torn read is
 *  just a dead peer — framing CRCs guard integrity, not length). */
bool recvAll(int fd, void *data, std::size_t n);

} // namespace psm::cluster

#endif // PSM_CLUSTER_SOCKET_HPP
