#include "cluster/standby.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "durable/format.hpp"
#include "durable/manager.hpp"
#include "durable/snapshot.hpp"

namespace psm::cluster {

namespace fs = std::filesystem;

namespace {

std::uint64_t
bodyU64(const std::vector<std::uint8_t> &body, std::size_t at)
{
    if (body.size() < at + 8)
        throw ClusterError("ship frame body too short");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(body[at + i]) << (8 * i);
    return v;
}

} // namespace

struct Standby::Replica
{
    std::string dir; ///< the session directory
    std::unique_ptr<durable::WalWriter> wal;
    std::uint64_t last_seq = 0;
    std::uint64_t frames_applied = 0;
    std::uint64_t frames_since_snapshot = 0;
    std::uint64_t gap_drops = 0;
    std::uint64_t snapshots_installed = 0;
    bool lagging = false;
};

Standby::Standby(std::shared_ptr<const ops5::Program> program,
                 StandbyOptions options)
    : program_(std::move(program)), options_(std::move(options)),
      fingerprint_(durable::programFingerprint(*program_))
{
    listen_fd_ = listenTcp(options_.host, options_.port);
    port_ = localPort(listen_fd_.get());
}

Standby::~Standby() { stop(); }

void
Standby::start()
{
    accept_thread_ = std::thread(&Standby::acceptLoop, this);
}

void
Standby::stop()
{
    if (stopping_.exchange(true))
        return;
    listen_fd_.shutdownBoth();
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto &c : conns_)
            c->shutdownBoth();
    }
    if (accept_thread_.joinable())
        accept_thread_.join();
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    std::lock_guard<std::mutex> lk(mu_);
    replicas_.clear();
}

void
Standby::acceptLoop()
{
    for (;;) {
        int fd = acceptTcp(listen_fd_.get());
        if (fd < 0)
            return;
        auto conn = std::make_shared<Fd>(fd);
        std::lock_guard<std::mutex> lk(conns_mu_);
        if (stopping_.load())
            return;
        conns_.insert(conn);
        conn_threads_.emplace_back(&Standby::serveConn, this, conn);
    }
}

void
Standby::serveConn(std::shared_ptr<Fd> fd)
{
    Frame frame;
    for (;;) {
        bool ok;
        try {
            ok = recvFrame(fd->get(), frame);
        } catch (const ClusterError &) {
            break; // not our protocol / corrupt stream: drop the peer
        }
        if (!ok)
            break;
        try {
            switch (frame.msg) {
              case Msg::ShipHello: break; // identity only, no state
              case Msg::WalSnapshot: handleSnapshot(frame); break;
              case Msg::WalFrame: handleFrame(frame); break;
              default: break; // shipping is one-way; ignore the rest
            }
        } catch (const std::exception &) {
            // A bad shard stream must not kill the whole channel;
            // the shard re-anchors at its next shipped snapshot.
        }
    }
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.erase(fd);
}

std::string
Standby::sessionDir(std::uint64_t gsid) const
{
    return options_.dir + "/shard-" + std::to_string(gsid) +
           "/session-0";
}

Standby::Replica *
Standby::openReplica(std::uint64_t gsid)
{
    // Caller holds mu_.
    auto it = replicas_.find(gsid);
    if (it != replicas_.end())
        return it->second.get();

    auto rep = std::make_unique<Replica>();
    rep->dir = sessionDir(gsid);
    std::error_code ec;
    fs::create_directories(rep->dir, ec);
    if (ec)
        throw ClusterError("cannot create replica dir " + rep->dir +
                           ": " + ec.message());

    // A replica reopened after a standby crash may hold a torn tail
    // (we died mid-append) — cut it exactly like local recovery
    // does, then resume from the last intact record.
    const std::string wal_path = rep->dir + "/wal.plog";
    if (fs::exists(wal_path, ec)) {
        durable::WalReadResult scan =
            durable::readWal(wal_path, fingerprint_);
        std::error_code size_ec;
        auto on_disk = fs::file_size(wal_path, size_ec);
        if (!size_ec && on_disk > scan.valid_bytes)
            durable::truncateWal(wal_path, scan.valid_bytes);
        if (!scan.records.empty())
            rep->last_seq = scan.records.back().seq;
    }
    for (const auto &[seq, path] :
         durable::Manager::snapshots(rep->dir)) {
        rep->last_seq = std::max(rep->last_seq, seq);
        break; // newest first
    }
    // Replicas never fsync: standby durability is re-established at
    // every shipped checkpoint, and a lost tail only widens replay.
    rep->wal = std::make_unique<durable::WalWriter>(
        wal_path, durable::FsyncPolicy::None, fingerprint_);

    Replica *raw = rep.get();
    replicas_.emplace(gsid, std::move(rep));
    return raw;
}

void
Standby::handleSnapshot(const Frame &frame)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (released_.count(frame.gsid) != 0)
        return; // promoted: the Worker owns this directory now
    Replica *rep = openReplica(frame.gsid);
    const std::uint64_t seq = bodyU64(frame.body, 0);
    std::vector<std::uint8_t> snap(frame.body.begin() + 8,
                                   frame.body.end());
    durable::writeFileAtomic(rep->dir + "/snap-" +
                                 std::to_string(seq) + ".psnap",
                             snap);
    // Mirror Manager::checkpoint: the log behind a durable snapshot
    // is redundant, and the snapshot re-anchors the sequence (this
    // is what ends a lagging stretch after dropped frames).
    rep->wal->reset();
    rep->last_seq = seq;
    rep->lagging = false;
    rep->frames_since_snapshot = 0;
    ++rep->snapshots_installed;

    auto snaps = durable::Manager::snapshots(rep->dir);
    for (std::size_t i =
             std::max<std::size_t>(options_.keep_snapshots, 1);
         i < snaps.size(); ++i) {
        std::error_code ec;
        fs::remove(snaps[i].second, ec);
    }
}

void
Standby::handleFrame(const Frame &frame)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (released_.count(frame.gsid) != 0)
        return;
    Replica *rep = openReplica(frame.gsid);
    const std::uint64_t seq = bodyU64(frame.body, 0);
    if (seq <= rep->last_seq)
        return; // duplicate across a reconnect resend
    if (rep->lagging || seq != rep->last_seq + 1) {
        // A gap can never be appended — recovery would reject it —
        // so the replica goes lagging until the next snapshot.
        rep->lagging = true;
        ++rep->gap_drops;
        return;
    }
    std::span<const std::uint8_t> raw(frame.body.data() + 8,
                                      frame.body.size() - 8);
    try {
        rep->wal->appendRawFrame(raw);
    } catch (const durable::DurableError &) {
        // Corrupt on the wire: treat like a gap.
        rep->lagging = true;
        ++rep->gap_drops;
        return;
    }
    rep->last_seq = seq;
    ++rep->frames_applied;
    ++rep->frames_since_snapshot;
}

void
Standby::releaseShard(std::uint64_t gsid)
{
    std::lock_guard<std::mutex> lk(mu_);
    released_.insert(gsid);
    replicas_.erase(gsid); // destroys the WalWriter, closing the fd
}

std::vector<ReplicaStats>
Standby::replicaStats() const
{
    std::vector<ReplicaStats> out;
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(replicas_.size());
    for (const auto &[gsid, rep] : replicas_) {
        ReplicaStats st;
        st.gsid = gsid;
        st.last_seq = rep->last_seq;
        st.frames_applied = rep->frames_applied;
        st.frames_since_snapshot = rep->frames_since_snapshot;
        st.gap_drops = rep->gap_drops;
        st.snapshots_installed = rep->snapshots_installed;
        st.lagging = rep->lagging;
        out.push_back(st);
    }
    return out;
}

std::string
Standby::statsJson() const
{
    std::ostringstream os;
    os << "{\"replicas\": [";
    bool first = true;
    for (const ReplicaStats &st : replicaStats()) {
        os << (first ? "" : ", ") << "{\"gsid\": " << st.gsid
           << ", \"last_seq\": " << st.last_seq
           << ", \"frames_applied\": " << st.frames_applied
           << ", \"frames_since_snapshot\": "
           << st.frames_since_snapshot
           << ", \"gap_drops\": " << st.gap_drops
           << ", \"snapshots_installed\": " << st.snapshots_installed
           << ", \"lagging\": " << (st.lagging ? "true" : "false")
           << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

} // namespace psm::cluster
