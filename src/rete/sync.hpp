/**
 * @file
 * Synchronisation primitives for fine-grain parallel match.
 *
 * The paper's hardware task scheduler guarantees that "multiple node
 * activations assigned to be processed in parallel cannot interfere
 * with each other". In software we enforce the same invariant with a
 * directional lock per two-input node: activations arriving on the
 * SAME side may run concurrently (each reads the opposite, quiescent
 * memory), while activations on OPPOSITE sides exclude each other —
 * otherwise an insert on each side could both miss (or both produce)
 * the joint pair.
 *
 * The lock is annotated as a Clang thread-safety capability (see
 * core/annotations.hpp). Both sides map to a SHARED acquisition —
 * the analysis cannot express "two flavours of shared that exclude
 * each other", so the side-vs-side exclusion itself is checked
 * dynamically instead, by the lock here and redundantly by
 * core::DebugAccessChecker in debug runs.
 */

#ifndef PSM_RETE_SYNC_HPP
#define PSM_RETE_SYNC_HPP

#include <cstdint>

#include "core/annotations.hpp"

namespace psm::rete {

/** Which input of a two-input node an activation arrives on. */
enum class Side : std::uint8_t { Left, Right };

/**
 * Reader-writer-style lock keyed by side instead of read/write:
 * any number of same-side holders, never both sides at once.
 *
 * Fairness: a side waits only while the other side is active; with
 * task granularity of 50-100 instructions, hold times are tiny and a
 * simple condition variable suffices.
 */
class PSM_CAPABILITY("directional_lock") DirectionalLock
{
  public:
    /** @return true when the caller had to wait for the opposite
     *  side — the contention signal telemetry reports. */
    bool
    acquire(Side side) PSM_ACQUIRE_SHARED()
    {
        bool contended = false;
        mutex_.lock();
        if (side == Side::Left) {
            while (right_ != 0) {
                contended = true;
                cv_.wait(mutex_);
            }
            ++left_;
        } else {
            while (left_ != 0) {
                contended = true;
                cv_.wait(mutex_);
            }
            ++right_;
        }
        mutex_.unlock();
        return contended;
    }

    void
    release(Side side) PSM_RELEASE_SHARED()
    {
        mutex_.lock();
        int &mine = side == Side::Left ? left_ : right_;
        if (--mine == 0)
            cv_.notify_all();
        mutex_.unlock();
    }

  private:
    core::Mutex mutex_;
    core::CondVarAny cv_;
    int left_ PSM_GUARDED_BY(mutex_) = 0;
    int right_ PSM_GUARDED_BY(mutex_) = 0;
};

/** RAII holder for a DirectionalLock. */
class PSM_SCOPED_CAPABILITY DirectionalGuard
{
  public:
    DirectionalGuard(DirectionalLock &lock, Side side)
        PSM_ACQUIRE_SHARED(lock)
        : lock_(lock), side_(side), contended_(lock_.acquire(side_))
    {}

    ~DirectionalGuard() PSM_RELEASE_GENERIC() { lock_.release(side_); }

    DirectionalGuard(const DirectionalGuard &) = delete;
    DirectionalGuard &operator=(const DirectionalGuard &) = delete;

    /** Whether the acquisition waited for the opposite side. */
    bool contended() const { return contended_; }

  private:
    DirectionalLock &lock_;
    Side side_;
    bool contended_;
};

} // namespace psm::rete

#endif // PSM_RETE_SYNC_HPP
