/**
 * @file
 * Synchronisation primitives for fine-grain parallel match.
 *
 * The paper's hardware task scheduler guarantees that "multiple node
 * activations assigned to be processed in parallel cannot interfere
 * with each other". In software we enforce the same invariant with a
 * directional lock per two-input node: activations arriving on the
 * SAME side may run concurrently (each reads the opposite, quiescent
 * memory), while activations on OPPOSITE sides exclude each other —
 * otherwise an insert on each side could both miss (or both produce)
 * the joint pair.
 */

#ifndef PSM_RETE_SYNC_HPP
#define PSM_RETE_SYNC_HPP

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace psm::rete {

/** Which input of a two-input node an activation arrives on. */
enum class Side : std::uint8_t { Left, Right };

/**
 * Reader-writer-style lock keyed by side instead of read/write:
 * any number of same-side holders, never both sides at once.
 *
 * Fairness: a side waits only while the other side is active; with
 * task granularity of 50-100 instructions, hold times are tiny and a
 * simple condition variable suffices.
 */
class DirectionalLock
{
  public:
    void
    acquire(Side side)
    {
        std::unique_lock lock(mutex_);
        int &mine = side == Side::Left ? left_ : right_;
        int &theirs = side == Side::Left ? right_ : left_;
        cv_.wait(lock, [&] { return theirs == 0; });
        ++mine;
    }

    void
    release(Side side)
    {
        std::lock_guard lock(mutex_);
        int &mine = side == Side::Left ? left_ : right_;
        if (--mine == 0)
            cv_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int left_ = 0;
    int right_ = 0;
};

/** RAII holder for a DirectionalLock. */
class DirectionalGuard
{
  public:
    DirectionalGuard(DirectionalLock &lock, Side side)
        : lock_(lock), side_(side)
    {
        lock_.acquire(side_);
    }

    ~DirectionalGuard() { lock_.release(side_); }

    DirectionalGuard(const DirectionalGuard &) = delete;
    DirectionalGuard &operator=(const DirectionalGuard &) = delete;

  private:
    DirectionalLock &lock_;
    Side side_;
};

} // namespace psm::rete

#endif // PSM_RETE_SYNC_HPP
