/**
 * @file
 * Network state validation: recomputes, from first principles, what
 * every memory node SHOULD contain given the live working memory, and
 * diffs that against the actual incremental state.
 *
 * This is the strongest internal-consistency oracle the test suite
 * has: conflict-set equivalence can miss corrupted intermediate state
 * that happens not to surface yet; this cannot.
 */

#ifndef PSM_RETE_VALIDATE_HPP
#define PSM_RETE_VALIDATE_HPP

#include <string>
#include <vector>

#include "rete/network.hpp"

namespace psm::rete {

/** Outcome of a validation pass. */
struct ValidationResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Checks every alpha memory, beta memory, and not-node count in
 * @p network against a ground-truth recomputation over @p live_wmes.
 * The network's state is not modified.
 */
ValidationResult validateNetworkState(
    const Network &network,
    const std::vector<const ops5::Wme *> &live_wmes);

} // namespace psm::rete

#endif // PSM_RETE_VALIDATE_HPP
