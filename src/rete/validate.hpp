/**
 * @file
 * The Rete invariant validator: structural invariants of the compiled
 * network, ground-truth recomputation of every memory node, local
 * left/right join agreement, and conflict-set-vs-matcher agreement.
 *
 * This is the strongest internal-consistency oracle the test suite
 * has: conflict-set equivalence can miss corrupted intermediate state
 * that happens not to surface yet; this cannot. The parallel matcher
 * leans on it doubly — every interference bug that slips past the
 * lock discipline (and past core::DebugAccessChecker) lands here as a
 * concrete memory diff at the next cycle barrier.
 *
 * Three entry points, by increasing strength:
 *  - validateStructure: shape-only invariants of the node graph
 *    (wiring, producers, private-state discipline); state-independent,
 *    checked once after compilation.
 *  - validateNetworkState: every alpha/beta memory, not-node count,
 *    and join output recomputed from the live working memory and
 *    diffed against the incremental state; plus tombstone emptiness
 *    (a cycle barrier must have drained them).
 *  - validateMatcherState: both of the above, plus the conflict set
 *    diffed against the instantiations the terminal-feeding memories
 *    say must exist.
 *
 * All passes are read-only. Debug-build engines can run
 * validateMatcherState after every recognize-act cycle (see
 * core::Engine::setCycleCheck and the `--validate` flag of
 * examples/ops5_cli.cpp).
 */

#ifndef PSM_RETE_VALIDATE_HPP
#define PSM_RETE_VALIDATE_HPP

#include <string>
#include <vector>

#include "rete/network.hpp"

namespace psm::ops5 {
class ConflictSet;
}

namespace psm::rete {

/** Outcome of a validation pass. */
struct ValidationResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    /** First few errors joined for diagnostics ("" when ok). */
    std::string summary(std::size_t max_errors = 8) const;

    /** Concatenates another pass' errors onto this one. */
    void merge(ValidationResult other);
};

/**
 * Checks state-independent structural invariants of @p network: dense
 * ids, non-null and type-correct wiring on every edge, two-input
 * nodes registered as successors of both input memories, exactly one
 * producer per beta memory (except the dummy top), terminals fed by
 * exactly one memory, and — for private-state networks — the
 * one-successor-per-memory discipline the parallel matcher's
 * composite activations rely on.
 */
ValidationResult validateStructure(const Network &network);

/**
 * Checks every alpha memory, beta memory, not-node count, and
 * per-join left/right output agreement in @p network against a
 * ground-truth recomputation over @p live_wmes. Also requires all
 * beta-memory tombstones to be drained (callers validate at cycle
 * barriers). The network's state is not modified.
 */
ValidationResult validateNetworkState(
    const Network &network,
    const std::vector<const ops5::Wme *> &live_wmes);

/**
 * Index ↔ memory agreement: every memory-node hash index (alpha
 * position map and probe buckets, beta identity index and probe
 * buckets, not-node entry index) must describe exactly the raw memory
 * contents, and alpha memories must have recorded zero removeWme
 * misses (a miss is a WM/alpha-memory desync that the caller could
 * not stop to report). Runs as part of validateNetworkState /
 * validateMatcherState; exposed separately so tests can target it.
 */
ValidationResult validateIndexes(const Network &network);

/**
 * Full matcher-state validation: validateStructure +
 * validateNetworkState + agreement between @p conflict_set and the
 * instantiations implied by the terminal-feeding beta memories
 * (including zero pending conflict-set tombstones).
 */
ValidationResult validateMatcherState(
    const Network &network,
    const std::vector<const ops5::Wme *> &live_wmes,
    const ops5::ConflictSet &conflict_set);

} // namespace psm::rete

#endif // PSM_RETE_VALIDATE_HPP
