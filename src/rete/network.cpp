#include "rete/network.hpp"

#include <algorithm>

#include "core/telemetry.hpp"

namespace psm::rete {

/**
 * Builds a Network from a Program. Sharing is implemented by
 * searching existing successors for a structurally identical node
 * before creating a new one; the *_by_owner maps restrict reuse to
 * the creating production when sharing is disabled.
 */
class NetworkBuilder
{
  public:
    NetworkBuilder(Network &net, const ops5::Program &program)
        : net_(net), program_(program)
    {}

    void
    run()
    {
        net_.top_ = create<BetaMemoryNode>();
        net_.top_->insertToken(Token{});
        for (const auto &p : program_.productions())
            addProduction(*p);
    }

  private:
    template <typename T>
    T *
    create()
    {
        auto node = std::make_unique<T>();
        T *raw = node.get();
        raw->id = static_cast<int>(net_.nodes_.size());
        net_.nodes_.push_back(std::move(node));
        net_.node_productions_.emplace_back();
        return raw;
    }

    void
    touch(Node *node, int prod_id)
    {
        auto &owners = net_.node_productions_[node->id];
        if (owners.empty() || owners.back() != prod_id)
            owners.push_back(prod_id);
        node->shared_by = static_cast<int>(owners.size());
    }

    /** May production @p prod reuse @p node under the share policy? */
    bool
    mayReuse(const Node *node, bool share_policy, int prod) const
    {
        if (share_policy)
            return true;
        const auto &owners = net_.node_productions_[node->id];
        return owners.size() == 1 && owners[0] == prod;
    }

    /**
     * Walks/extends the alpha chain for one CE and returns its alpha
     * memory. The chain starts at the class root list and applies
     * each canonical alpha test in order.
     */
    AlphaMemoryNode *
    buildAlphaChain(const CompiledCe &ce, int prod)
    {
        const NetworkOptions &opt = net_.options_;
        std::vector<Node *> *succ = &net_.class_roots_[ce.cls];

        for (const AlphaTest &test : ce.alpha_tests) {
            ConstTestNode *found = nullptr;
            for (Node *n : *succ) {
                if (n->kind != NodeKind::ConstTest)
                    continue;
                auto *ct = static_cast<ConstTestNode *>(n);
                if (ct->test == test &&
                    mayReuse(ct, opt.share_const_tests, prod)) {
                    found = ct;
                    break;
                }
            }
            if (found) {
                ++net_.build_stats_.reused_const_tests;
            } else {
                found = create<ConstTestNode>();
                found->test = test;
                succ->push_back(found);
                ++net_.build_stats_.const_tests;
            }
            touch(found, prod);
            succ = &found->successors;
        }

        // When alpha sharing is off, every CE gets a private memory —
        // even within one production — so each memory has exactly one
        // two-input successor (the parallel matcher's composite-task
        // invariant).
        if (opt.share_alpha) {
            for (Node *n : *succ) {
                if (n->kind == NodeKind::AlphaMemory) {
                    ++net_.build_stats_.reused_alpha_memories;
                    touch(n, prod);
                    return static_cast<AlphaMemoryNode *>(n);
                }
            }
        }
        auto *am = create<AlphaMemoryNode>();
        succ->push_back(am);
        ++net_.build_stats_.alpha_memories;
        touch(am, prod);
        return am;
    }

    /** Finds a reusable two-input node below @p left / @p right. */
    Node *
    findTwoInput(BetaMemoryNode *left, AlphaMemoryNode *right,
                 const std::vector<JoinTest> &tests, bool negated,
                 int prod) const
    {
        if (!net_.options_.share_two_input)
            return nullptr;
        for (Node *n : left->successors) {
            if (negated && n->kind == NodeKind::Not) {
                auto *nn = static_cast<NotNode *>(n);
                if (nn->right == right && nn->tests == tests)
                    return nn;
            }
            if (!negated && n->kind == NodeKind::Join) {
                auto *jn = static_cast<JoinNode *>(n);
                if (jn->right == right && jn->tests == tests)
                    return jn;
            }
        }
        (void)prod;
        return nullptr;
    }

    void
    addProduction(const ops5::Production &p)
    {
        CompiledLhs lhs = compileLhs(p);
        int prod = p.id();
        BetaMemoryNode *current = net_.top_;
        touch(current, prod);

        for (const CompiledCe &ce : lhs.ces) {
            AlphaMemoryNode *am = buildAlphaChain(ce, prod);
            Node *two = findTwoInput(current, am, ce.join_tests,
                                     ce.negated, prod);
            if (two) {
                ++net_.build_stats_.reused_two_input;
                touch(two, prod);
                current = ce.negated
                    ? static_cast<NotNode *>(two)->output
                    : static_cast<JoinNode *>(two)->output;
                touch(current, prod);
                continue;
            }
            if (ce.negated) {
                auto *nn = create<NotNode>();
                nn->left = current;
                nn->right = am;
                nn->tests = ce.join_tests;
                nn->output = create<BetaMemoryNode>();
                current->successors.push_back(nn);
                am->successors.push_back(nn);
                touch(nn, prod);
                current = nn->output;
                ++net_.build_stats_.nots;
            } else {
                auto *jn = create<JoinNode>();
                jn->left = current;
                jn->right = am;
                jn->tests = ce.join_tests;
                jn->output = create<BetaMemoryNode>();
                current->successors.push_back(jn);
                am->successors.push_back(jn);
                touch(jn, prod);
                current = jn->output;
                ++net_.build_stats_.joins;
            }
            ++net_.build_stats_.beta_memories;
            touch(current, prod);
        }

        auto *term = create<TerminalNode>();
        term->production = &p;
        current->successors.push_back(term);
        net_.terminals_.push_back(term);
        touch(term, prod);
        ++net_.build_stats_.terminals;
    }

    Network &net_;
    const ops5::Program &program_;
};

Network::Network(std::shared_ptr<const ops5::Program> program,
                 NetworkOptions options)
    : program_(std::move(program)), options_(options)
{
    NetworkBuilder(*this, *program_).run();
    finalizeIndexes();
}

namespace {

int
registerAlphaProbe(AlphaMemoryNode &am, WmeKeySpec spec)
{
    for (std::size_t i = 0; i < am.probes.size(); ++i)
        if (am.probes[i].spec == spec)
            return static_cast<int>(i);
    am.probes.push_back({std::move(spec), {}});
    return static_cast<int>(am.probes.size() - 1);
}

int
registerBetaProbe(BetaMemoryNode &bm, TokenKeySpec spec)
{
    for (std::size_t i = 0; i < bm.probes.size(); ++i)
        if (bm.probes[i].spec == spec)
            return static_cast<int>(i);
    bm.probes.push_back({std::move(spec), {}});
    return static_cast<int>(bm.probes.size() - 1);
}

} // namespace

void
Network::finalizeIndexes()
{
    for (const auto &node : nodes_) {
        if (node->kind == NodeKind::Join) {
            auto *jn = static_cast<JoinNode *>(node.get());
            jn->flat = flattenJoinTests(jn->tests);
            if (jn->flat.n > 0 && jn->flat.all_eq) {
                jn->right_probe = registerAlphaProbe(
                    *jn->right, wmeKeySpecOf(jn->tests));
                jn->left_probe = registerBetaProbe(
                    *jn->left, tokenKeySpecOf(jn->tests));
                ++jn->right->indexed_join_successors;
                ++jn->left->indexed_join_successors;
            }
        } else if (node->kind == NodeKind::Not) {
            auto *nn = static_cast<NotNode *>(node.get());
            nn->flat = flattenJoinTests(nn->tests);
            if (nn->flat.n > 0 && nn->flat.all_eq)
                nn->right_probe = registerAlphaProbe(
                    *nn->right, wmeKeySpecOf(nn->tests));
        }
    }
}

const std::vector<Node *> &
Network::classRoots(ops5::SymbolId cls) const
{
    static const std::vector<Node *> empty;
    auto it = class_roots_.find(cls);
    return it == class_roots_.end() ? empty : it->second;
}

void
Network::resetState()
{
    for (const auto &node : nodes_) {
        switch (node->kind) {
          case NodeKind::AlphaMemory:
            static_cast<AlphaMemoryNode *>(node.get())->clearState();
            break;
          case NodeKind::BetaMemory:
            static_cast<BetaMemoryNode *>(node.get())->clearState();
            break;
          case NodeKind::Not:
            static_cast<NotNode *>(node.get())->clearState();
            break;
          default:
            break;
        }
    }
    top_->insertToken(Token{});
}

void
Network::rebuildIndexes()
{
    for (const auto &node : nodes_) {
        switch (node->kind) {
          case NodeKind::AlphaMemory:
            static_cast<AlphaMemoryNode *>(node.get())->rebuildIndexes();
            break;
          case NodeKind::BetaMemory:
            static_cast<BetaMemoryNode *>(node.get())->rebuildIndexes();
            break;
          case NodeKind::Not:
            static_cast<NotNode *>(node.get())->rebuildIndexes();
            break;
          default:
            break;
        }
    }
}

void
configureTelemetryNodes(telemetry::Registry &reg, const Network &network)
{
    std::vector<int> node_production(network.nodes().size(), -1);
    for (const auto &node : network.nodes()) {
        if (node->kind == NodeKind::ConstTest ||
            node.get() == network.top())
            continue;
        const std::vector<int> &prods = network.productionsOf(node->id);
        if (prods.size() == 1)
            node_production[static_cast<std::size_t>(node->id)] =
                prods.front();
    }
    reg.configureNodes(network.nodes().size(),
                       std::move(node_production),
                       network.program().productions().size());
}

} // namespace psm::rete
