/**
 * @file
 * Node types of the Rete network.
 *
 * The network follows Forgy's four node families (Section 2.2 of the
 * paper): constant-test nodes, memory nodes (alpha for single WMEs,
 * beta for tokens), two-input nodes (joins and negated-CE "not"
 * nodes), and terminal nodes. Memory contents carry their own small
 * mutexes and two-input nodes carry directional locks so the same
 * network object can be driven by the serial matcher or by the
 * fine-grain parallel matcher.
 *
 * Memory nodes are hash-indexed (PR 8): alpha memories keep an O(1)
 * position map plus per-key-spec probe buckets keyed on the fields
 * the downstream joins test, and beta memories keep their tokens in a
 * slot-stable TokenStore with an identity index and the same kind of
 * probe buckets over token key fields. Join right-/left-activations
 * probe a bucket instead of scanning the opposite memory, and
 * removals are keyed lookups instead of linear std::find scans. The
 * probe specs are registered once at network-build time
 * (Network::finalizeIndexes); index maintenance happens inside
 * insertWme/removeWme/insertToken/removeToken under each node's own
 * mutex, so every matcher config gets the indexes for free.
 *
 * Indexing is ADAPTIVE: a memory below kMemIndexOn entries keeps no
 * index at all — small memories are the overwhelming common case in
 * calibrated OPS5 workloads, and for them a linear scan beats the
 * per-update hashing and bucket allocation by a wide margin. The
 * first insert that reaches kMemIndexOn builds every index for the
 * memory in one O(n) pass (amortized O(1)); removal back below
 * kMemIndexOff tears them down (hysteresis prevents thrash around the
 * threshold). Probing callers must check indexed() before using a
 * probe slot and fall back to the scan path otherwise.
 */

#ifndef PSM_RETE_NODES_HPP
#define PSM_RETE_NODES_HPP

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ops5/condition.hpp"
#include "rete/sync.hpp"
#include "rete/token.hpp"

namespace psm::ops5 {
class Production;
}

namespace psm::rete {

/** Discriminator for Node. */
enum class NodeKind : std::uint8_t {
    Root, ///< pseudo-node: per-change class dispatch (trace records only)
    ConstTest,
    AlphaMemory,
    Join,
    Not,
    BetaMemory,
    Terminal,
};

const char *nodeKindName(NodeKind k);

/** Base of all network nodes. */
struct Node
{
    NodeKind kind;
    int id = -1;          ///< dense id within the Network
    int shared_by = 1;    ///< number of productions using this node

    explicit Node(NodeKind k) : kind(k) {}
    virtual ~Node() = default;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;
};

/**
 * A test a constant-test node applies to one WME.
 *
 * IntraField implements within-CE variable consistency (the second
 * occurrence of a variable inside one condition element), which OPS5
 * compiles into the alpha network because it needs no join context.
 */
struct AlphaTest
{
    enum class Kind : std::uint8_t { Constant, ConstantSet, IntraField };

    Kind kind = Kind::Constant;
    ops5::Predicate pred = ops5::Predicate::Eq;
    int field = 0;
    ops5::Value constant{};
    std::vector<ops5::Value> set; ///< ConstantSet members
    int other_field = 0;          ///< IntraField: compare `field` vs this

    bool eval(const ops5::Wme &wme, const ops5::SymbolTable &syms) const;
    bool operator==(const AlphaTest &o) const;
};

/** Constant-test node: filters WMEs flowing down an alpha chain. */
struct ConstTestNode : Node
{
    ConstTestNode() : Node(NodeKind::ConstTest) {}

    AlphaTest test;
    std::vector<Node *> successors; ///< ConstTestNode or AlphaMemoryNode
};

/** Memory size at which a node builds its hash indexes. */
inline constexpr std::size_t kMemIndexOn = 32;
/** Memory size below which an indexed node drops them again. */
inline constexpr std::size_t kMemIndexOff = 8;

/** WME-side probe key: the right-input fields an all-eq join tests. */
using WmeKeySpec = std::vector<std::int32_t>;

/** Token-side probe key: (positive-CE ordinal, field) per test. */
struct TokenKeyField
{
    std::int32_t ce = 0;
    std::int32_t field = 0;

    bool operator==(const TokenKeyField &o) const = default;
};
using TokenKeySpec = std::vector<TokenKeyField>;

/** Hash of @p wme's fields named by @p spec (probe bucket key). */
std::uint64_t wmeKeyHash(const WmeKeySpec &spec, const ops5::Wme &wme);

/** Hash of @p token's fields named by @p spec (probe bucket key). */
std::uint64_t tokenKeyHash(const TokenKeySpec &spec, const Token &token);

/** One probe index over an alpha memory: key spec + hash buckets. */
struct AlphaProbe
{
    WmeKeySpec spec;
    std::unordered_multimap<std::uint64_t, const ops5::Wme *> buckets;
};

/** One probe index over a beta memory: key spec + slot buckets. */
struct BetaProbe
{
    TokenKeySpec spec;
    std::unordered_multimap<std::uint64_t, std::uint32_t> buckets;
};

/** Alpha memory: stores WMEs that pass one CE's constant tests. */
struct AlphaMemoryNode : Node
{
    AlphaMemoryNode() : Node(NodeKind::AlphaMemory) {}

    std::vector<const ops5::Wme *> items;
    /** items position of each WME — O(1) keyed removal when indexed. */
    std::unordered_map<const ops5::Wme *, std::uint32_t> pos;
    /** Probe indexes registered by Network::finalizeIndexes. */
    std::vector<AlphaProbe> probes;
    /** True while pos/probes are maintained (size-gated). */
    bool idx_active = false;
    /** Join successors with a probe (hashed-config cost parity). */
    int indexed_join_successors = 0;
    /** removeWme calls that found nothing — WM/alpha desync. */
    std::uint64_t remove_misses = 0;
    std::mutex mutex;                 ///< guards items (parallel mode)
    std::vector<Node *> successors;   ///< Join / Not, right side

    /** Appends @p wme and indexes it. Thread safe. */
    void insertWme(const ops5::Wme *wme);

    /**
     * Erases @p wme from items and every index. Thread safe.
     * @return false when absent (also recorded in remove_misses so
     *         rete/validate can flag the desync even when callers
     *         cannot stop to report it).
     */
    [[nodiscard]] bool removeWme(const ops5::Wme *wme);

    /** Unlocked snapshot size (approximate under concurrency). */
    std::size_t size() const { return items.size(); }

    /** True while probe buckets are live (probing callers must
     *  fall back to the scan path otherwise). */
    bool indexed() const { return idx_active; }

    /** Drops all contents and index entries (probe specs stay). */
    void clearState();

    /** Re-derives index state from items (e.g. after restore). */
    void rebuildIndexes();

  private:
    void buildIndexes(); ///< caller holds mutex
    void dropIndexes();  ///< caller holds mutex
};

/**
 * Beta memory: stores tokens matching a CE prefix, and absorbs
 * out-of-order insert/remove pairs with anti-token tombstones (see
 * DESIGN.md). Tombstones are cleared at every cycle barrier.
 *
 * Tokens live in a slot-stable TokenStore; by_token maps token hash
 * to slot for O(1) insert/remove, and per-key-spec probe buckets let
 * downstream joins enumerate only bucket-matching tokens.
 */
struct BetaMemoryNode : Node
{
    BetaMemoryNode() : Node(NodeKind::BetaMemory) {}

    /**
     * Pending-tombstone ceiling. Legitimate parks are bounded by the
     * in-flight removes of one cycle; crossing this means spurious
     * removes (e.g. replay of a foreign batch) are accumulating.
     */
    static constexpr std::uint64_t kTombstonePendingCap = 1u << 20;

    TokenStore store;
    /** token hash -> store slot (identity index, size-gated). */
    std::unordered_multimap<std::uint64_t, std::uint32_t> by_token;
    /** Probe indexes registered by Network::finalizeIndexes. */
    std::vector<BetaProbe> probes;
    /** True while by_token/probes are maintained (size-gated). */
    bool idx_active = false;
    /** Anti-tokens parked by early removes, with multiplicity. */
    std::unordered_map<Token, std::uint32_t, TokenHash> tombstones;
    std::uint64_t tombstones_pending = 0;    ///< sum of multiplicities
    std::uint64_t tombstone_high_water = 0;  ///< peak since last clear
    /** Join successors with a probe (hashed-config cost parity). */
    int indexed_join_successors = 0;
    std::mutex mutex;
    std::vector<Node *> successors; ///< Join / Not (left side), Terminal

    /**
     * Inserts @p token unless a tombstone annihilates it.
     * @return true when actually stored (callers forward downstream
     *         only in that case).
     */
    bool insertToken(Token token);

    /**
     * Removes @p token; parks a tombstone when absent.
     * @return true when a live token was removed (forward downstream
     *         only then).
     */
    bool removeToken(const Token &token);

    void clearTombstones();
    std::size_t size() const { return store.size(); }
    std::size_t tombstoneCount() const { return tombstones_pending; }

    /** True while probe buckets are live (probing callers must
     *  fall back to the scan path otherwise). */
    bool indexed() const { return idx_active; }

    /** Drops all contents and index entries (probe specs stay). */
    void clearState();

    /** Re-derives index state from the store (e.g. after restore). */
    void rebuildIndexes();

  private:
    void buildIndexes(); ///< caller holds mutex
    void dropIndexes();  ///< caller holds mutex
};

/** One consistency test a two-input node performs at join time. */
struct JoinTest
{
    ops5::Predicate pred = ops5::Predicate::Eq;
    int wme_field = 0;   ///< field of the WME on the right input
    int token_ce = 0;    ///< positive-CE ordinal within the left token
    int token_field = 0; ///< field within that WME

    bool operator==(const JoinTest &o) const = default;
};

/**
 * Join tests flattened at network-build time into structure-of-arrays
 * form. The common all-equality case skips predicate dispatch
 * entirely and runs a branch-light Value::operator== loop.
 */
struct FlatTests
{
    std::uint32_t n = 0;
    bool all_eq = true;
    std::vector<std::uint8_t> preds;        ///< ops5::Predicate values
    std::vector<std::int32_t> wme_fields;
    std::vector<std::int32_t> token_ces;
    std::vector<std::int32_t> token_fields;
};

/** Evaluates every flattened test on (token, wme). */
bool evalFlatTests(const FlatTests &flat, const Token &token,
                   const ops5::Wme &wme, const ops5::SymbolTable &syms);

/**
 * Probe-key hashes derived from a node's flattened tests. Probe
 * buckets are maintained from one side (alpha buckets hash WME
 * fields, beta buckets hash token fields); the OPPOSITE side probes
 * with the complementary field list — under all-Eq tests, matching
 * values hash identically, so the bucket holds every possible match.
 */
std::uint64_t probeHashFromToken(const FlatTests &flat,
                                 const Token &token);
std::uint64_t probeHashFromWme(const FlatTests &flat,
                               const ops5::Wme &wme);

/** Evaluates every test of @p tests on (token, wme). */
bool evalJoinTests(const std::vector<JoinTest> &tests, const Token &token,
                   const ops5::Wme &wme, const ops5::SymbolTable &syms);

/** Overload for callers holding a raw WME tuple (TREAT-family
 *  matchers enumerate tuples without ever materializing Tokens). */
bool evalJoinTests(const std::vector<JoinTest> &tests,
                   const std::vector<const ops5::Wme *> &tuple,
                   const ops5::Wme &wme, const ops5::SymbolTable &syms);

/**
 * Two-input join node ("and" node): pairs left tokens with right WMEs
 * whose variable bindings are consistent.
 */
struct JoinNode : Node
{
    JoinNode() : Node(NodeKind::Join) {}

    BetaMemoryNode *left = nullptr;   ///< left input memory
    AlphaMemoryNode *right = nullptr; ///< right input memory
    std::vector<JoinTest> tests;
    FlatTests flat;      ///< built by Network::finalizeIndexes
    int left_probe = -1; ///< probe slot in left->probes (-1: scan)
    int right_probe = -1;///< probe slot in right->probes (-1: scan)
    BetaMemoryNode *output = nullptr;

    /** Same-side concurrency, opposite-side exclusion. */
    DirectionalLock lock;
};

/**
 * Negated-CE node: forwards a left token only while no right WME
 * matches it; per-token match counts are the node's own state.
 */
struct NotNode : Node
{
    NotNode() : Node(NodeKind::Not) {}

    struct Entry
    {
        Token token;
        int count = 0;
    };

    BetaMemoryNode *left = nullptr;
    AlphaMemoryNode *right = nullptr;
    std::vector<JoinTest> tests;
    FlatTests flat;       ///< built by Network::finalizeIndexes
    int right_probe = -1; ///< probe slot in right->probes (-1: scan)
    BetaMemoryNode *output = nullptr;

    std::vector<Entry> entries;
    /** token hash -> entries position (size-gated O(1) left-remove). */
    std::unordered_multimap<std::uint64_t, std::uint32_t> entry_index;
    /** True while entry_index is maintained (size-gated). */
    bool idx_active = false;
    std::mutex mutex; ///< exclusive: counts are read-modify-write

    /** Appends an entry and indexes it. Caller holds mutex. */
    void addEntry(Token token, int count);

    /**
     * Erases the entry for @p token. Caller holds mutex.
     * @return its count, or -1 when absent.
     */
    int removeEntry(const Token &token);

    bool indexed() const { return idx_active; }

    /** Drops all entries and index entries. */
    void clearState();

    /** Re-derives entry_index from entries (e.g. after restore). */
    void rebuildIndexes();

  private:
    void buildIndexes(); ///< caller holds mutex
    void dropIndexes();  ///< caller holds mutex
};

/** Terminal node: reports conflict-set changes for one production. */
struct TerminalNode : Node
{
    TerminalNode() : Node(NodeKind::Terminal) {}

    const ops5::Production *production = nullptr;
};

} // namespace psm::rete

#endif // PSM_RETE_NODES_HPP
