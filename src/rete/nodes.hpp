/**
 * @file
 * Node types of the Rete network.
 *
 * The network follows Forgy's four node families (Section 2.2 of the
 * paper): constant-test nodes, memory nodes (alpha for single WMEs,
 * beta for tokens), two-input nodes (joins and negated-CE "not"
 * nodes), and terminal nodes. Memory contents carry their own small
 * mutexes and two-input nodes carry directional locks so the same
 * network object can be driven by the serial matcher or by the
 * fine-grain parallel matcher.
 */

#ifndef PSM_RETE_NODES_HPP
#define PSM_RETE_NODES_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "ops5/condition.hpp"
#include "rete/sync.hpp"
#include "rete/token.hpp"

namespace psm::ops5 {
class Production;
}

namespace psm::rete {

/** Discriminator for Node. */
enum class NodeKind : std::uint8_t {
    Root, ///< pseudo-node: per-change class dispatch (trace records only)
    ConstTest,
    AlphaMemory,
    Join,
    Not,
    BetaMemory,
    Terminal,
};

const char *nodeKindName(NodeKind k);

/** Base of all network nodes. */
struct Node
{
    NodeKind kind;
    int id = -1;          ///< dense id within the Network
    int shared_by = 1;    ///< number of productions using this node

    explicit Node(NodeKind k) : kind(k) {}
    virtual ~Node() = default;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;
};

/**
 * A test a constant-test node applies to one WME.
 *
 * IntraField implements within-CE variable consistency (the second
 * occurrence of a variable inside one condition element), which OPS5
 * compiles into the alpha network because it needs no join context.
 */
struct AlphaTest
{
    enum class Kind : std::uint8_t { Constant, ConstantSet, IntraField };

    Kind kind = Kind::Constant;
    ops5::Predicate pred = ops5::Predicate::Eq;
    int field = 0;
    ops5::Value constant{};
    std::vector<ops5::Value> set; ///< ConstantSet members
    int other_field = 0;          ///< IntraField: compare `field` vs this

    bool eval(const ops5::Wme &wme, const ops5::SymbolTable &syms) const;
    bool operator==(const AlphaTest &o) const;
};

/** Constant-test node: filters WMEs flowing down an alpha chain. */
struct ConstTestNode : Node
{
    ConstTestNode() : Node(NodeKind::ConstTest) {}

    AlphaTest test;
    std::vector<Node *> successors; ///< ConstTestNode or AlphaMemoryNode
};

/** Alpha memory: stores WMEs that pass one CE's constant tests. */
struct AlphaMemoryNode : Node
{
    AlphaMemoryNode() : Node(NodeKind::AlphaMemory) {}

    std::vector<const ops5::Wme *> items;
    std::mutex mutex;                 ///< guards items (parallel mode)
    std::vector<Node *> successors;   ///< Join / Not, right side

    /** Appends @p wme. Thread safe. */
    void insertWme(const ops5::Wme *wme);

    /** Erases @p wme. @return false when absent. Thread safe. */
    bool removeWme(const ops5::Wme *wme);

    /** Unlocked snapshot size (approximate under concurrency). */
    std::size_t size() const { return items.size(); }
};

/**
 * Beta memory: stores tokens matching a CE prefix, and absorbs
 * out-of-order insert/remove pairs with anti-token tombstones (see
 * DESIGN.md). Tombstones are cleared at every cycle barrier.
 */
struct BetaMemoryNode : Node
{
    BetaMemoryNode() : Node(NodeKind::BetaMemory) {}

    std::vector<Token> tokens;
    std::vector<Token> tombstones;
    std::mutex mutex;
    std::vector<Node *> successors; ///< Join / Not (left side), Terminal

    /**
     * Inserts @p token unless a tombstone annihilates it.
     * @return true when actually stored (callers forward downstream
     *         only in that case).
     */
    bool insertToken(Token token);

    /**
     * Removes @p token; parks a tombstone when absent.
     * @return true when a live token was removed (forward downstream
     *         only then).
     */
    bool removeToken(const Token &token);

    void clearTombstones();
    std::size_t size() const { return tokens.size(); }
};

/** One consistency test a two-input node performs at join time. */
struct JoinTest
{
    ops5::Predicate pred = ops5::Predicate::Eq;
    int wme_field = 0;   ///< field of the WME on the right input
    int token_ce = 0;    ///< positive-CE ordinal within the left token
    int token_field = 0; ///< field within that WME

    bool operator==(const JoinTest &o) const = default;
};

/** Evaluates every test of @p tests on (token, wme). */
bool evalJoinTests(const std::vector<JoinTest> &tests, const Token &token,
                   const ops5::Wme &wme, const ops5::SymbolTable &syms);

/**
 * Two-input join node ("and" node): pairs left tokens with right WMEs
 * whose variable bindings are consistent.
 */
struct JoinNode : Node
{
    JoinNode() : Node(NodeKind::Join) {}

    BetaMemoryNode *left = nullptr;   ///< left input memory
    AlphaMemoryNode *right = nullptr; ///< right input memory
    std::vector<JoinTest> tests;
    BetaMemoryNode *output = nullptr;

    /** Same-side concurrency, opposite-side exclusion. */
    DirectionalLock lock;
};

/**
 * Negated-CE node: forwards a left token only while no right WME
 * matches it; per-token match counts are the node's own state.
 */
struct NotNode : Node
{
    NotNode() : Node(NodeKind::Not) {}

    struct Entry
    {
        Token token;
        int count = 0;
    };

    BetaMemoryNode *left = nullptr;
    AlphaMemoryNode *right = nullptr;
    std::vector<JoinTest> tests;
    BetaMemoryNode *output = nullptr;

    std::vector<Entry> entries;
    std::mutex mutex; ///< exclusive: counts are read-modify-write
};

/** Terminal node: reports conflict-set changes for one production. */
struct TerminalNode : Node
{
    TerminalNode() : Node(NodeKind::Terminal) {}

    const ops5::Production *production = nullptr;
};

} // namespace psm::rete

#endif // PSM_RETE_NODES_HPP
