#include "rete/compile.hpp"

#include <algorithm>
#include <map>

namespace psm::rete {

namespace {

/** Canonical order so structurally equal CEs share alpha chains. */
void
canonicalize(std::vector<AlphaTest> &tests)
{
    std::stable_sort(tests.begin(), tests.end(),
                     [](const AlphaTest &a, const AlphaTest &b) {
                         if (a.field != b.field)
                             return a.field < b.field;
                         if (a.kind != b.kind)
                             return a.kind < b.kind;
                         return a.pred < b.pred;
                     });
}

} // namespace

CompiledLhs
compileLhs(const ops5::Production &production)
{
    CompiledLhs out;
    out.production = &production;

    // Variable -> (positive ordinal, field) of its defining occurrence.
    std::map<ops5::SymbolId, std::pair<int, int>> global;
    int positive_ordinal = 0;

    for (const ops5::ConditionElement &ce : production.lhs()) {
        CompiledCe cce;
        cce.cls = ce.cls;
        cce.negated = ce.negated;

        // Variable -> field of its defining occurrence within this CE.
        // Resolved in a pre-pass over the whole CE: the defining
        // occurrence is the first equality occurrence in field order,
        // so a predicate occurrence in an earlier FIELD may still use
        // a variable bound at a later field (condition elements are
        // conjunctions; occurrence order carries no meaning).
        std::map<ops5::SymbolId, int> local;
        for (const ops5::FieldTests &ft : ce.fields) {
            for (const ops5::AtomicTest &t : ft.tests) {
                if (t.operand == ops5::OperandKind::Variable &&
                    t.pred == ops5::Predicate::Eq &&
                    global.find(t.var) == global.end()) {
                    local.try_emplace(t.var, ft.field);
                }
            }
        }
        // Which local definitions have been consumed (skipped) so a
        // second Eq occurrence at the same field still emits a test.
        std::map<ops5::SymbolId, bool> defined;

        for (const ops5::FieldTests &ft : ce.fields) {
            for (const ops5::AtomicTest &t : ft.tests) {
                switch (t.operand) {
                  case ops5::OperandKind::Constant: {
                    AlphaTest at;
                    at.kind = AlphaTest::Kind::Constant;
                    at.pred = t.pred;
                    at.field = ft.field;
                    at.constant = t.constant;
                    cce.alpha_tests.push_back(std::move(at));
                    break;
                  }
                  case ops5::OperandKind::ConstantSet: {
                    AlphaTest at;
                    at.kind = AlphaTest::Kind::ConstantSet;
                    at.pred = t.pred;
                    at.field = ft.field;
                    at.set = t.set;
                    cce.alpha_tests.push_back(std::move(at));
                    break;
                  }
                  case ops5::OperandKind::Variable: {
                    auto g = global.find(t.var);
                    if (g != global.end()) {
                        JoinTest jt;
                        jt.pred = t.pred;
                        jt.wme_field = ft.field;
                        jt.token_ce = g->second.first;
                        jt.token_field = g->second.second;
                        cce.join_tests.push_back(jt);
                        break;
                    }
                    auto l = local.find(t.var);
                    if (l == local.end())
                        break; // unbound non-Eq: parser rejects this
                    if (l->second == ft.field &&
                        t.pred == ops5::Predicate::Eq &&
                        !defined[t.var]) {
                        // The defining occurrence: no test emitted.
                        defined[t.var] = true;
                        break;
                    }
                    AlphaTest at;
                    at.kind = AlphaTest::Kind::IntraField;
                    at.pred = t.pred;
                    at.field = ft.field;
                    at.other_field = l->second;
                    cce.alpha_tests.push_back(std::move(at));
                    break;
                  }
                }
            }
        }

        canonicalize(cce.alpha_tests);

        if (!ce.negated) {
            for (const auto &[var, field] : local)
                global.try_emplace(var, positive_ordinal, field);
            ++positive_ordinal;
        }
        out.ces.push_back(std::move(cce));
    }
    return out;
}

FlatTests
flattenJoinTests(const std::vector<JoinTest> &tests)
{
    FlatTests flat;
    flat.n = static_cast<std::uint32_t>(tests.size());
    flat.preds.reserve(tests.size());
    flat.wme_fields.reserve(tests.size());
    flat.token_ces.reserve(tests.size());
    flat.token_fields.reserve(tests.size());
    for (const JoinTest &t : tests) {
        flat.all_eq &= t.pred == ops5::Predicate::Eq;
        flat.preds.push_back(static_cast<std::uint8_t>(t.pred));
        flat.wme_fields.push_back(t.wme_field);
        flat.token_ces.push_back(t.token_ce);
        flat.token_fields.push_back(t.token_field);
    }
    return flat;
}

WmeKeySpec
wmeKeySpecOf(const std::vector<JoinTest> &tests)
{
    WmeKeySpec spec;
    spec.reserve(tests.size());
    for (const JoinTest &t : tests)
        spec.push_back(t.wme_field);
    return spec;
}

TokenKeySpec
tokenKeySpecOf(const std::vector<JoinTest> &tests)
{
    TokenKeySpec spec;
    spec.reserve(tests.size());
    for (const JoinTest &t : tests)
        spec.push_back({t.token_ce, t.token_field});
    return spec;
}

} // namespace psm::rete
