/**
 * @file
 * Instruction-count cost model for node activations.
 *
 * The paper's analysis is phrased in machine instructions: a node
 * activation is a task of 50-100 instructions (Section 4), the serial
 * Rete cost of one WM change is c1 ~ 1800 instructions, and the
 * non-state-saving cost per WME is c3 ~ 1100 instructions
 * (Section 3.1). These constants reproduce those magnitudes on the
 * calibrated workloads; unit tests pin the c1 figure within a
 * tolerance band so drift is caught.
 */

#ifndef PSM_RETE_COST_MODEL_HPP
#define PSM_RETE_COST_MODEL_HPP

#include <cstdint>

namespace psm::rete {

/**
 * Per-operation instruction costs charged while executing node
 * activations. All values are in "machine instructions" of the
 * paper's 2 MIPS processors.
 */
struct CostModel
{
    // Root: hash the class symbol and fan out to the alpha chains.
    std::uint32_t root_dispatch = 12;

    // Constant-test node: load field, compare, branch.
    std::uint32_t const_test = 10;

    // Memory nodes: allocate/locate an entry and link it.
    std::uint32_t alpha_insert = 20;
    std::uint32_t alpha_remove_base = 16;
    std::uint32_t alpha_scan_per_item = 2;  ///< removal search
    std::uint32_t beta_insert = 34;
    std::uint32_t beta_remove_base = 20;
    std::uint32_t beta_scan_per_item = 3;   ///< removal search

    // Two-input nodes: fixed setup plus per-candidate test cost and
    // per-emitted-token build cost.
    std::uint32_t join_base = 40;
    std::uint32_t join_per_candidate = 8;
    std::uint32_t join_per_test = 5;
    std::uint32_t token_build = 30;

    // Not nodes additionally maintain per-token match counts.
    std::uint32_t not_base = 32;
    std::uint32_t not_per_entry = 7;

    // Terminal node: build/delete a conflict-set instantiation.
    std::uint32_t terminal = 130;

    /** Cost of one two-input activation that examined @p candidates
     *  items, ran @p tests tests on each surviving pair, and built
     *  @p outputs tokens. */
    std::uint32_t
    joinActivation(std::uint64_t candidates, std::uint64_t tests,
                   std::uint64_t outputs) const
    {
        return join_base +
               static_cast<std::uint32_t>(candidates * join_per_candidate +
                                          tests * join_per_test +
                                          outputs * token_build);
    }
};

} // namespace psm::rete

#endif // PSM_RETE_COST_MODEL_HPP
