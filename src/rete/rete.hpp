/**
 * @file
 * Umbrella header for the Rete match engine.
 */

#ifndef PSM_RETE_RETE_HPP
#define PSM_RETE_RETE_HPP

#include "rete/compile.hpp"     // IWYU pragma: export
#include "rete/cost_model.hpp"  // IWYU pragma: export
#include "rete/dot.hpp"         // IWYU pragma: export
#include "rete/matcher.hpp"     // IWYU pragma: export
#include "rete/network.hpp"     // IWYU pragma: export
#include "rete/nodes.hpp"       // IWYU pragma: export
#include "rete/sync.hpp"        // IWYU pragma: export
#include "rete/token.hpp"       // IWYU pragma: export
#include "rete/trace.hpp"       // IWYU pragma: export
#include "rete/validate.hpp"    // IWYU pragma: export

#endif // PSM_RETE_RETE_HPP
