#include "rete/matcher.hpp"

#include <algorithm>

namespace psm::rete {

ReteMatcher::ReteMatcher(std::shared_ptr<Network> network,
                         CostModel cost_model, bool hash_joins)
    : network_(std::move(network)), cost_(cost_model),
      hash_joins_(hash_joins)
{
    for (const auto &node : network_->nodes())
        if (node->kind == NodeKind::BetaMemory)
            beta_memories_.push_back(
                static_cast<BetaMemoryNode *>(node.get()));
}

ReteMatcher::ReteMatcher(std::shared_ptr<const ops5::Program> program,
                         CostModel cost_model, bool hash_joins)
    : ReteMatcher(std::make_shared<Network>(std::move(program)),
                  cost_model, hash_joins)
{}

void
ReteMatcher::rebuildIndexes()
{
    network_->rebuildIndexes();
}

telemetry::Registry *
ReteMatcher::enableTelemetry()
{
    if (!tel_) {
        tel_ = std::make_unique<telemetry::Registry>(1);
        configureTelemetryNodes(*tel_, *network_);
    }
    return tel_.get();
}

std::uint64_t
ReteMatcher::recordActivation(const WorkItem &item, NodeKind kind,
                              std::uint32_t cost)
{
    std::uint64_t id = next_activation_id_++;
    ++stats_.activations;
    stats_.instructions += cost;
    if (tel_) {
        tel_->count(0, telemetry::Counter::TasksExecuted);
        tel_->observe(0, telemetry::Histogram::TaskCostInstr, cost);
        if (item.node)
            tel_->nodeActivation(0, item.node->id, cost);
    }
    if (sink_) {
        ActivationRecord rec;
        rec.id = id;
        rec.parent = item.parent;
        rec.node_id = item.node ? item.node->id : -1;
        rec.kind = kind;
        rec.side = item.side;
        rec.insert = item.insert;
        rec.cost = cost;
        rec.change = change_index_;
        rec.cycle = cycle_;
        sink_->record(rec);
    }
    return id;
}

void
ReteMatcher::emit(WorkItem item, std::uint64_t parent)
{
    item.parent = parent;
    queue_.push_back(std::move(item));
}

void
ReteMatcher::processChanges(std::span<const ops5::WmeChange> changes)
{
    ++cycle_;
    if (sink_)
        sink_->beginCycle(cycle_, changes.size());
    if (spans_)
        spans_->beginCycle(cycle_);
    if (tel_) {
        tel_->count(0, telemetry::Counter::Batches);
        tel_->count(0, telemetry::Counter::ChangesProcessed,
                    changes.size());
    }

    change_index_ = 0;
    for (const ops5::WmeChange &change : changes) {
        ++stats_.changes_processed;
        // One epoch per WM change: the sequential matcher measures
        // Section 5's affected-productions-per-change exactly.
        if (tel_)
            tel_->beginEpoch();
        bool insert = change.kind == ops5::ChangeKind::Insert;

        // Root dispatch: hash the class, fan out to the alpha chains.
        WorkItem root;
        root.side = Side::Right;
        root.insert = insert;
        root.wme = change.wme;
        std::uint64_t root_id =
            recordActivation(root, NodeKind::Root, cost_.root_dispatch);

        for (Node *head : network_->classRoots(change.wme->className())) {
            WorkItem item;
            item.node = head;
            item.side = Side::Right;
            item.insert = insert;
            item.wme = change.wme;
            emit(std::move(item), root_id);
        }

        // Sequential semantics: drain each change to fixpoint before
        // starting the next (the trace keeps per-change attribution).
        //
        // Depth-first (LIFO) order is load-bearing, not a preference:
        // when one WME feeds BOTH inputs of a join (it matches two
        // condition elements of a production), exactly-once pairing
        // requires that each two-input activation runs while the
        // conjugate side's memory still holds its pre-change contents.
        // Depth-first gives that (each alpha subtree completes before
        // the next memory update), mirroring the recursive procedure
        // calls of Forgy's interpreter; breadth-first would emit the
        // self-join pair twice on insert and zero times on delete.
        while (!queue_.empty()) {
            WorkItem item = std::move(queue_.back());
            queue_.pop_back();
            if (spans_) {
                RealSpan span;
                span.node_id = item.node->id;
                span.kind = item.node->kind;
                span.insert = item.insert;
                span.cycle = cycle_;
                span.start_ns = spanClockNanos();
                processItem(item);
                span.end_ns = spanClockNanos();
                spans_->record(0, span);
            } else {
                processItem(item);
            }
        }
        if (tel_)
            tel_->endEpoch();
        ++change_index_;
    }

    // Cycle barrier: no tombstone may survive into the next cycle.
    for (BetaMemoryNode *bm : beta_memories_)
        bm->clearTombstones();
    conflict_set_.clearTombstones();
    if (spans_)
        spans_->endCycle();
}

void
ReteMatcher::processItem(const WorkItem &item)
{
    switch (item.node->kind) {
      case NodeKind::ConstTest:
        processConstTest(item);
        break;
      case NodeKind::AlphaMemory:
        processAlphaMemory(item);
        break;
      case NodeKind::BetaMemory:
        processBetaMemory(item);
        break;
      case NodeKind::Join:
        processJoin(item);
        break;
      case NodeKind::Not:
        processNot(item);
        break;
      case NodeKind::Terminal:
        processTerminal(item);
        break;
      case NodeKind::Root:
        break; // never queued
    }
}

void
ReteMatcher::processConstTest(const WorkItem &item)
{
    auto *node = static_cast<ConstTestNode *>(item.node);
    std::uint64_t id =
        recordActivation(item, NodeKind::ConstTest, cost_.const_test);
    ++stats_.comparisons;
    if (!node->test.eval(*item.wme, network_->program().symbols()))
        return;
    for (Node *succ : node->successors) {
        WorkItem next = item;
        next.node = succ;
        emit(std::move(next), id);
    }
}

void
ReteMatcher::processAlphaMemory(const WorkItem &item)
{
    auto *node = static_cast<AlphaMemoryNode *>(item.node);
    std::uint32_t cost;
    if (item.insert) {
        node->insertWme(item.wme);
        cost = cost_.alpha_insert;
    } else {
        // The removal is an O(1) keyed erase, but the plain matcher
        // still *charges* the classic linear-scan cost so simulator
        // traces match the paper's machine model.
        std::size_t scanned = node->size();
        if (!node->removeWme(item.wme) && tel_)
            tel_->count(0, telemetry::Counter::AlphaRemoveMisses);
        cost = cost_.alpha_remove_base +
               static_cast<std::uint32_t>(scanned *
                                          cost_.alpha_scan_per_item);
    }
    if (hash_joins_)
        stats_.instructions += // hash + bucket maintenance per index
            6u * static_cast<std::uint32_t>(node->indexed_join_successors);
    std::uint64_t id = recordActivation(item, NodeKind::AlphaMemory, cost);
    for (Node *succ : node->successors) {
        WorkItem next = item;
        next.node = succ;
        next.side = Side::Right;
        emit(std::move(next), id);
    }
}

void
ReteMatcher::processBetaMemory(const WorkItem &item)
{
    auto *node = static_cast<BetaMemoryNode *>(item.node);
    bool forward;
    std::uint32_t cost;
    if (item.insert) {
        forward = node->insertToken(item.token);
        cost = cost_.beta_insert;
    } else {
        std::size_t scanned = node->size();
        forward = node->removeToken(item.token);
        if (!forward && tel_)
            tel_->count(0, telemetry::Counter::TombstoneParks);
        cost = cost_.beta_remove_base +
               static_cast<std::uint32_t>(scanned *
                                          cost_.beta_scan_per_item);
    }
    if (hash_joins_ && forward)
        stats_.instructions += // hash + bucket maintenance per index
            6u * static_cast<std::uint32_t>(node->indexed_join_successors);
    if (tel_)
        tel_->observe(0, telemetry::Histogram::BetaMemorySize,
                      node->size());
    std::uint64_t id = recordActivation(item, NodeKind::BetaMemory, cost);
    if (!forward)
        return;
    for (Node *succ : node->successors) {
        WorkItem next = item;
        next.node = succ;
        next.side = Side::Left;
        emit(std::move(next), id);
    }
}

void
ReteMatcher::processJoin(const WorkItem &item)
{
    auto *node = static_cast<JoinNode *>(item.node);
    const ops5::SymbolTable &syms = network_->program().symbols();
    std::uint64_t probed = 0, outputs = 0;
    std::uint64_t full = 0; // opposite-memory size: the modeled scan
    std::vector<WorkItem> produced;

    if (item.side == Side::Left) {
        full = node->right->items.size();
        auto tryPair = [&](const ops5::Wme *wme) {
            ++probed;
            if (evalFlatTests(node->flat, item.token, *wme, syms)) {
                ++outputs;
                WorkItem next;
                next.node = node->output;
                next.side = Side::Left;
                next.insert = item.insert;
                next.token = item.token.extend(wme);
                produced.push_back(std::move(next));
            }
        };
        if (node->right_probe >= 0 && node->right->indexed()) {
            const AlphaProbe &probe =
                node->right->probes[node->right_probe];
            auto range = probe.buckets.equal_range(
                probeHashFromToken(node->flat, item.token));
            for (auto it = range.first; it != range.second; ++it)
                tryPair(it->second);
        } else {
            for (const ops5::Wme *wme : node->right->items)
                tryPair(wme);
        }
    } else {
        full = node->left->size();
        auto tryPair = [&](const Token &token) {
            ++probed;
            if (evalFlatTests(node->flat, token, *item.wme, syms)) {
                ++outputs;
                WorkItem next;
                next.node = node->output;
                next.side = Side::Left;
                next.insert = item.insert;
                next.token = token.extend(item.wme);
                produced.push_back(std::move(next));
            }
        };
        if (node->left_probe >= 0 && node->left->indexed()) {
            const BetaProbe &probe =
                node->left->probes[node->left_probe];
            auto range = probe.buckets.equal_range(
                probeHashFromWme(node->flat, *item.wme));
            for (auto it = range.first; it != range.second; ++it)
                tryPair(node->left->store.at(it->second));
        } else {
            node->left->store.forEach(
                [&](const Token &token) { tryPair(token); });
        }
    }

    // The activation always probed a bucket, but the plain matcher
    // charges the classic full-scan candidate count (the paper's
    // machine model); only the hashed config charges what it probed.
    std::uint64_t candidates = hash_joins_ ? probed : full;
    std::uint32_t cost = cost_.joinActivation(
        candidates, candidates * node->tests.size(), outputs);
    if (tel_)
        tel_->observe(0, telemetry::Histogram::JoinCandidates,
                      candidates);
    std::uint64_t id = recordActivation(item, NodeKind::Join, cost);
    stats_.comparisons += candidates;
    stats_.tokens_built += outputs;
    for (WorkItem &next : produced)
        emit(std::move(next), id);
}

void
ReteMatcher::processNot(const WorkItem &item)
{
    auto *node = static_cast<NotNode *>(item.node);
    const ops5::SymbolTable &syms = network_->program().symbols();
    std::uint64_t candidates = 0;
    std::vector<WorkItem> produced;

    auto forward = [&](const Token &token, bool insert) {
        WorkItem next;
        next.node = node->output;
        next.side = Side::Left;
        next.insert = insert;
        next.token = token;
        produced.push_back(std::move(next));
    };

    if (item.side == Side::Left) {
        if (item.insert) {
            // Count matches via the right memory's probe bucket when
            // one exists; charge the modeled full-scan count either
            // way (not nodes were never hashed in the cost model).
            candidates = node->right->items.size();
            int count = 0;
            if (node->right_probe >= 0 && node->right->indexed()) {
                const AlphaProbe &probe =
                    node->right->probes[node->right_probe];
                auto range = probe.buckets.equal_range(
                    probeHashFromToken(node->flat, item.token));
                for (auto it = range.first; it != range.second; ++it)
                    if (evalFlatTests(node->flat, item.token,
                                      *it->second, syms))
                        ++count;
            } else {
                for (const ops5::Wme *wme : node->right->items)
                    if (evalFlatTests(node->flat, item.token, *wme,
                                      syms))
                        ++count;
            }
            node->addEntry(item.token, count);
            if (count == 0)
                forward(item.token, true);
        } else {
            candidates = node->entries.size();
            int count = node->removeEntry(item.token);
            if (count == 0)
                forward(item.token, false);
        }
    } else {
        for (NotNode::Entry &entry : node->entries) {
            ++candidates;
            if (!evalFlatTests(node->flat, entry.token, *item.wme, syms))
                continue;
            if (item.insert) {
                if (++entry.count == 1)
                    forward(entry.token, false);
            } else {
                if (--entry.count == 0)
                    forward(entry.token, true);
            }
        }
    }

    std::uint32_t cost = cost_.not_base +
        static_cast<std::uint32_t>(candidates * cost_.not_per_entry +
                                   candidates * node->tests.size() *
                                       cost_.join_per_test);
    std::uint64_t id = recordActivation(item, NodeKind::Not, cost);
    stats_.comparisons += candidates;
    for (WorkItem &next : produced)
        emit(std::move(next), id);
}

void
ReteMatcher::processTerminal(const WorkItem &item)
{
    auto *node = static_cast<TerminalNode *>(item.node);
    recordActivation(item, NodeKind::Terminal, cost_.terminal);
    ops5::Instantiation inst;
    inst.production = node->production;
    inst.wmes = item.token.toVector();
    if (item.insert)
        conflict_set_.insert(std::move(inst));
    else
        conflict_set_.remove(inst);
}

std::size_t
ReteMatcher::pendingTombstones() const
{
    std::size_t n = conflict_set_.pendingTombstones();
    for (const auto &node : network_->nodes()) {
        if (node->kind == NodeKind::BetaMemory)
            n += static_cast<const BetaMemoryNode *>(node.get())
                     ->tombstoneCount();
    }
    return n;
}

} // namespace psm::rete
