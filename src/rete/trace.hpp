/**
 * @file
 * Activation traces: the interface between a match run and the PSM
 * multiprocessor simulator.
 *
 * This mirrors the paper's methodology (Section 6): the simulator's
 * input is "a detailed trace of node activations from an actual run
 * of a production system (the trace contains information about the
 * dependencies between node activations)". Each record names its
 * node, side, direction, instruction cost, the activation that
 * spawned it, and the WM change / recognize-act cycle it belongs to.
 */

#ifndef PSM_RETE_TRACE_HPP
#define PSM_RETE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "rete/nodes.hpp"

namespace psm::rete {

/** One node activation, as the simulator consumes it. */
struct ActivationRecord
{
    std::uint64_t id = 0;      ///< unique, > 0
    std::uint64_t parent = 0;  ///< spawning activation; 0 = WM change
    int node_id = -1;
    NodeKind kind = NodeKind::ConstTest;
    Side side = Side::Right;
    bool insert = true;
    std::uint32_t cost = 0;    ///< instructions (CostModel units)
    std::uint32_t change = 0;  ///< WM-change ordinal within the cycle
    std::uint32_t cycle = 0;   ///< recognize-act cycle number
};

/** Receiver of activation records during a match run. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void record(const ActivationRecord &rec) = 0;

    /** Called once per recognize-act cycle before its activations. */
    virtual void beginCycle(std::uint32_t cycle, std::size_t n_changes)
    {
        (void)cycle;
        (void)n_changes;
    }
};

/** TraceSink that stores everything in memory. */
class TraceRecorder : public TraceSink
{
  public:
    void record(const ActivationRecord &rec) override
    {
        records_.push_back(rec);
    }

    void
    beginCycle(std::uint32_t cycle, std::size_t n_changes) override
    {
        cycles_.push_back({cycle, n_changes, records_.size()});
    }

    /** Per-cycle index: cycle number, WM changes, first record. */
    struct CycleMark
    {
        std::uint32_t cycle;
        std::size_t n_changes;
        std::size_t first_record;
    };

    const std::vector<ActivationRecord> &records() const
    {
        return records_;
    }
    const std::vector<CycleMark> &cycles() const { return cycles_; }

    /** Pre-sizes the record and cycle-mark storage (use when the
     *  workload size is known, e.g. re-recording another trace). */
    void
    reserve(std::size_t n_records, std::size_t n_cycles = 0)
    {
        records_.reserve(n_records);
        cycles_.reserve(n_cycles ? n_cycles : cycles_.size());
    }

    /** Total cost-model instructions across all records — the serial
     *  execution time of the traced workload. */
    std::uint64_t
    totalCost() const
    {
        std::uint64_t total = 0;
        for (const ActivationRecord &rec : records_)
            total += rec.cost;
        return total;
    }

    void
    clear()
    {
        records_.clear();
        cycles_.clear();
    }

  private:
    std::vector<ActivationRecord> records_;
    std::vector<CycleMark> cycles_;
};

} // namespace psm::rete

#endif // PSM_RETE_TRACE_HPP
