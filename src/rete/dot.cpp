#include "rete/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace psm::rete {

std::string
dotEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

namespace {

/** Escapes a label for DOT. */
std::string
escape(const std::string &s)
{
    return dotEscape(s);
}

class DotWriter
{
  public:
    DotWriter(const Network &net, std::ostream &out,
              const DotOptions &opt)
        : net_(net), out_(out), opt_(opt)
    {}

    void
    run()
    {
        out_ << "digraph rete {\n"
             << "  rankdir=TB;\n"
             << "  node [fontsize=10];\n";
        for (const auto &node : net_.nodes()) {
            if (!included(node.get()))
                continue;
            emitNode(node.get());
            emitEdges(node.get());
        }
        // Root class-dispatch pseudo-edges.
        emitRoots();
        out_ << "}\n";
    }

  private:
    bool
    included(const Node *node) const
    {
        if (opt_.production < 0)
            return true;
        const auto &owners = net_.productionsOf(node->id);
        return std::find(owners.begin(), owners.end(),
                         opt_.production) != owners.end();
    }

    std::string
    name(const Node *node) const
    {
        return "n" + std::to_string(node->id);
    }

    void
    emitNode(const Node *node)
    {
        const ops5::SymbolTable &syms = net_.program().symbols();
        std::ostringstream label;
        std::string shape = "box", style;
        switch (node->kind) {
          case NodeKind::ConstTest: {
            auto *ct = static_cast<const ConstTestNode *>(node);
            label << "test f" << ct->test.field << " "
                  << ops5::predicateName(ct->test.pred);
            if (ct->test.kind == AlphaTest::Kind::Constant)
                label << " " << ct->test.constant.toString(syms);
            else if (ct->test.kind == AlphaTest::Kind::IntraField)
                label << " f" << ct->test.other_field;
            else
                label << " <<...>>";
            shape = "ellipse";
            break;
          }
          case NodeKind::AlphaMemory: {
            label << "alpha";
            if (opt_.show_counts) {
                label << " ("
                      << static_cast<const AlphaMemoryNode *>(node)
                             ->items.size()
                      << ")";
            }
            style = "filled";
            break;
          }
          case NodeKind::BetaMemory: {
            label << (node == net_.top() ? "top" : "beta");
            if (opt_.show_counts) {
                label << " ("
                      << static_cast<const BetaMemoryNode *>(node)
                             ->size()
                      << ")";
            }
            style = "filled";
            break;
          }
          case NodeKind::Join: {
            auto *j = static_cast<const JoinNode *>(node);
            label << "join";
            if (!j->tests.empty())
                label << " [" << j->tests.size() << " tests]";
            shape = "trapezium";
            break;
          }
          case NodeKind::Not: {
            auto *n = static_cast<const NotNode *>(node);
            label << "not";
            if (!n->tests.empty())
                label << " [" << n->tests.size() << " tests]";
            shape = "invtrapezium";
            break;
          }
          case NodeKind::Terminal: {
            auto *t = static_cast<const TerminalNode *>(node);
            label << "P: " << t->production->name();
            shape = "doubleoctagon";
            break;
          }
          case NodeKind::Root:
            break;
        }
        out_ << "  " << name(node) << " [label=\""
             << escape(label.str()) << "\", shape=" << shape;
        if (!style.empty())
            out_ << ", style=" << style << ", fillcolor=lightgray";
        if (node->shared_by > 1)
            out_ << ", color=blue, penwidth=2";
        out_ << "];\n";
    }

    void
    edge(const Node *from, const Node *to, const char *label = nullptr)
    {
        if (!included(from) || !included(to))
            return;
        out_ << "  " << name(from) << " -> " << name(to);
        if (label)
            out_ << " [label=\"" << label << "\", fontsize=8]";
        out_ << ";\n";
    }

    void
    emitEdges(const Node *node)
    {
        switch (node->kind) {
          case NodeKind::ConstTest:
            for (Node *succ :
                 static_cast<const ConstTestNode *>(node)->successors)
                edge(node, succ);
            break;
          case NodeKind::AlphaMemory:
            for (Node *succ :
                 static_cast<const AlphaMemoryNode *>(node)->successors)
                edge(node, succ, "right");
            break;
          case NodeKind::BetaMemory:
            for (Node *succ :
                 static_cast<const BetaMemoryNode *>(node)->successors) {
                edge(node, succ,
                     succ->kind == NodeKind::Terminal ? nullptr
                                                      : "left");
            }
            break;
          case NodeKind::Join:
            edge(node, static_cast<const JoinNode *>(node)->output);
            break;
          case NodeKind::Not:
            edge(node, static_cast<const NotNode *>(node)->output);
            break;
          default:
            break;
        }
    }

    void
    emitRoots()
    {
        const ops5::SymbolTable &syms = net_.program().symbols();
        // One pseudo-node per class that has chains.
        int cls_node = 0;
        for (std::size_t s = 0; s < syms.size(); ++s) {
            const auto &heads =
                net_.classRoots(static_cast<ops5::SymbolId>(s));
            if (heads.empty())
                continue;
            bool any = std::any_of(heads.begin(), heads.end(),
                                   [&](Node *h) {
                                       return included(h);
                                   });
            if (!any)
                continue;
            std::string id = "cls" + std::to_string(cls_node++);
            out_ << "  " << id << " [label=\"class "
                 << escape(syms.name(static_cast<ops5::SymbolId>(s)))
                 << "\", shape=plaintext];\n";
            for (Node *head : heads) {
                if (included(head))
                    out_ << "  " << id << " -> " << name(head) << ";\n";
            }
        }
    }

    const Network &net_;
    std::ostream &out_;
    const DotOptions &opt_;
};

} // namespace

void
writeDot(const Network &network, std::ostream &out,
         const DotOptions &options)
{
    DotWriter(network, out, options).run();
}

std::string
toDot(const Network &network, const DotOptions &options)
{
    std::ostringstream os;
    writeDot(network, os, options);
    return os.str();
}

} // namespace psm::rete
