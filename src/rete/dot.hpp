/**
 * @file
 * Graphviz (DOT) export of Rete networks — the diagrams of the
 * paper's Figure 2-2, generated from real compiled networks.
 */

#ifndef PSM_RETE_DOT_HPP
#define PSM_RETE_DOT_HPP

#include <iosfwd>
#include <string>

#include "rete/network.hpp"

namespace psm::rete {

/** Options for the DOT rendering. */
struct DotOptions
{
    /** Include current memory contents (token/WME counts) in labels. */
    bool show_counts = false;

    /** Limit output to the subnetwork of one production id
     *  (-1 = whole network). */
    int production = -1;
};

/** Escapes a node/edge label for DOT output (quotes, backslashes).
 *  Shared with the analysis layer's interference-graph export. */
std::string dotEscape(const std::string &s);

/** Writes the network as a DOT digraph to @p out. */
void writeDot(const Network &network, std::ostream &out,
              const DotOptions &options = {});

/** Convenience: renders to a string. */
std::string toDot(const Network &network, const DotOptions &options = {});

} // namespace psm::rete

#endif // PSM_RETE_DOT_HPP
