#include "rete/nodes.hpp"

#include <algorithm>

namespace psm::rete {

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Root: return "root";
      case NodeKind::ConstTest: return "const-test";
      case NodeKind::AlphaMemory: return "alpha-mem";
      case NodeKind::Join: return "join";
      case NodeKind::Not: return "not";
      case NodeKind::BetaMemory: return "beta-mem";
      case NodeKind::Terminal: return "terminal";
    }
    return "?";
}

bool
AlphaTest::eval(const ops5::Wme &wme, const ops5::SymbolTable &syms) const
{
    const ops5::Value &actual = wme.field(field);
    switch (kind) {
      case Kind::Constant:
        return ops5::evalPredicate(pred, actual, constant, syms);
      case Kind::ConstantSet: {
        bool member = std::any_of(set.begin(), set.end(),
                                  [&](const ops5::Value &v) {
                                      return actual == v;
                                  });
        return pred == ops5::Predicate::Eq ? member : !member;
      }
      case Kind::IntraField:
        return ops5::evalPredicate(pred, actual, wme.field(other_field),
                                   syms);
    }
    return false;
}

bool
AlphaTest::operator==(const AlphaTest &o) const
{
    return kind == o.kind && pred == o.pred && field == o.field &&
           constant == o.constant && set == o.set &&
           other_field == o.other_field;
}

void
AlphaMemoryNode::insertWme(const ops5::Wme *wme)
{
    std::lock_guard lock(mutex);
    items.push_back(wme);
}

bool
AlphaMemoryNode::removeWme(const ops5::Wme *wme)
{
    std::lock_guard lock(mutex);
    auto it = std::find(items.begin(), items.end(), wme);
    if (it == items.end())
        return false;
    // Order-insensitive erase: memories are sets, not sequences.
    *it = items.back();
    items.pop_back();
    return true;
}

bool
BetaMemoryNode::insertToken(Token token)
{
    std::lock_guard lock(mutex);
    auto it = std::find(tombstones.begin(), tombstones.end(), token);
    if (it != tombstones.end()) {
        *it = std::move(tombstones.back());
        tombstones.pop_back();
        return false;
    }
    tokens.push_back(std::move(token));
    return true;
}

bool
BetaMemoryNode::removeToken(const Token &token)
{
    std::lock_guard lock(mutex);
    auto it = std::find(tokens.begin(), tokens.end(), token);
    if (it == tokens.end()) {
        tombstones.push_back(token);
        return false;
    }
    *it = std::move(tokens.back());
    tokens.pop_back();
    return true;
}

void
BetaMemoryNode::clearTombstones()
{
    std::lock_guard lock(mutex);
    tombstones.clear();
}

bool
evalJoinTests(const std::vector<JoinTest> &tests, const Token &token,
              const ops5::Wme &wme, const ops5::SymbolTable &syms)
{
    for (const JoinTest &t : tests) {
        const ops5::Value &lhs = wme.field(t.wme_field);
        const ops5::Value &rhs =
            token.wmes[t.token_ce]->field(t.token_field);
        if (!ops5::evalPredicate(t.pred, lhs, rhs, syms))
            return false;
    }
    return true;
}

} // namespace psm::rete
