#include "rete/nodes.hpp"

#include <algorithm>
#include <cassert>

namespace psm::rete {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
combineHash(std::uint64_t h, const ops5::Value &v)
{
    return (h ^ v.hash()) * kFnvPrime;
}

} // namespace

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Root: return "root";
      case NodeKind::ConstTest: return "const-test";
      case NodeKind::AlphaMemory: return "alpha-mem";
      case NodeKind::Join: return "join";
      case NodeKind::Not: return "not";
      case NodeKind::BetaMemory: return "beta-mem";
      case NodeKind::Terminal: return "terminal";
    }
    return "?";
}

bool
AlphaTest::eval(const ops5::Wme &wme, const ops5::SymbolTable &syms) const
{
    const ops5::Value &actual = wme.field(field);
    switch (kind) {
      case Kind::Constant:
        return ops5::evalPredicate(pred, actual, constant, syms);
      case Kind::ConstantSet: {
        bool member = std::any_of(set.begin(), set.end(),
                                  [&](const ops5::Value &v) {
                                      return actual == v;
                                  });
        return pred == ops5::Predicate::Eq ? member : !member;
      }
      case Kind::IntraField:
        return ops5::evalPredicate(pred, actual, wme.field(other_field),
                                   syms);
    }
    return false;
}

bool
AlphaTest::operator==(const AlphaTest &o) const
{
    return kind == o.kind && pred == o.pred && field == o.field &&
           constant == o.constant && set == o.set &&
           other_field == o.other_field;
}

std::uint64_t
wmeKeyHash(const WmeKeySpec &spec, const ops5::Wme &wme)
{
    std::uint64_t h = kFnvOffset;
    for (std::int32_t f : spec)
        h = combineHash(h, wme.field(f));
    return h;
}

std::uint64_t
tokenKeyHash(const TokenKeySpec &spec, const Token &token)
{
    std::uint64_t h = kFnvOffset;
    for (const TokenKeyField &kf : spec)
        h = combineHash(h, token[kf.ce]->field(kf.field));
    return h;
}

std::uint64_t
probeHashFromToken(const FlatTests &flat, const Token &token)
{
    std::uint64_t h = kFnvOffset;
    for (std::uint32_t i = 0; i < flat.n; ++i)
        h = combineHash(
            h, token[flat.token_ces[i]]->field(flat.token_fields[i]));
    return h;
}

std::uint64_t
probeHashFromWme(const FlatTests &flat, const ops5::Wme &wme)
{
    std::uint64_t h = kFnvOffset;
    for (std::uint32_t i = 0; i < flat.n; ++i)
        h = combineHash(h, wme.field(flat.wme_fields[i]));
    return h;
}

void
AlphaMemoryNode::buildIndexes()
{
    pos.clear();
    pos.reserve(items.size() * 2);
    for (AlphaProbe &probe : probes) {
        probe.buckets.clear();
        probe.buckets.reserve(items.size() * 2);
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        pos[items[i]] = static_cast<std::uint32_t>(i);
        for (AlphaProbe &probe : probes)
            probe.buckets.emplace(wmeKeyHash(probe.spec, *items[i]),
                                  items[i]);
    }
    idx_active = true;
}

void
AlphaMemoryNode::dropIndexes()
{
    pos.clear();
    for (AlphaProbe &probe : probes)
        probe.buckets.clear();
    idx_active = false;
}

void
AlphaMemoryNode::insertWme(const ops5::Wme *wme)
{
    std::lock_guard lock(mutex);
    items.push_back(wme);
    if (idx_active) {
        pos[wme] = static_cast<std::uint32_t>(items.size() - 1);
        for (AlphaProbe &probe : probes)
            probe.buckets.emplace(wmeKeyHash(probe.spec, *wme), wme);
    } else if (items.size() >= kMemIndexOn) {
        buildIndexes();
    }
}

bool
AlphaMemoryNode::removeWme(const ops5::Wme *wme)
{
    std::lock_guard lock(mutex);
    if (!idx_active) {
        // Below the adaptive threshold the memory holds fewer than
        // kMemIndexOn entries, so the linear scan is bounded and
        // cheaper than maintaining the index maps.
        auto it = std::find(items.begin(), items.end(), wme);
        if (it == items.end()) {
            ++remove_misses;
            return false;
        }
        // Order-insensitive erase: memories are sets, not sequences.
        *it = items.back();
        items.pop_back();
        return true;
    }
    auto it = pos.find(wme);
    if (it == pos.end()) {
        ++remove_misses;
        return false;
    }
    for (AlphaProbe &probe : probes) {
        auto range = probe.buckets.equal_range(
            wmeKeyHash(probe.spec, *wme));
        for (auto b = range.first; b != range.second; ++b) {
            if (b->second == wme) {
                probe.buckets.erase(b);
                break;
            }
        }
    }
    std::uint32_t i = it->second;
    pos.erase(it);
    items[i] = items.back();
    items.pop_back();
    if (i < items.size())
        pos[items[i]] = i;
    if (items.size() < kMemIndexOff)
        dropIndexes();
    return true;
}

void
AlphaMemoryNode::clearState()
{
    std::lock_guard lock(mutex);
    items.clear();
    dropIndexes();
    remove_misses = 0;
}

void
AlphaMemoryNode::rebuildIndexes()
{
    std::lock_guard lock(mutex);
    if (items.size() >= kMemIndexOn)
        buildIndexes();
    else
        dropIndexes();
}

void
BetaMemoryNode::buildIndexes()
{
    by_token.clear();
    by_token.reserve(store.size() * 2);
    for (BetaProbe &probe : probes) {
        probe.buckets.clear();
        probe.buckets.reserve(store.size() * 2);
    }
    store.forEachSlot([&](std::uint32_t slot, const Token &token) {
        by_token.emplace(token.hash(), slot);
        for (BetaProbe &probe : probes)
            probe.buckets.emplace(tokenKeyHash(probe.spec, token),
                                  slot);
    });
    idx_active = true;
}

void
BetaMemoryNode::dropIndexes()
{
    by_token.clear();
    for (BetaProbe &probe : probes)
        probe.buckets.clear();
    idx_active = false;
}

bool
BetaMemoryNode::insertToken(Token token)
{
    std::lock_guard lock(mutex);
    if (tombstones_pending != 0) {
        auto ts = tombstones.find(token);
        if (ts != tombstones.end()) {
            if (--ts->second == 0)
                tombstones.erase(ts);
            --tombstones_pending;
            return false;
        }
    }
    std::uint64_t h = token.hash();
    std::uint32_t slot = store.insert(std::move(token));
    if (idx_active) {
        by_token.emplace(h, slot);
        const Token &stored = store.at(slot);
        for (BetaProbe &probe : probes)
            probe.buckets.emplace(tokenKeyHash(probe.spec, stored),
                                  slot);
    } else if (store.size() >= kMemIndexOn) {
        buildIndexes();
    }
    return true;
}

bool
BetaMemoryNode::removeToken(const Token &token)
{
    std::lock_guard lock(mutex);
    if (!idx_active) {
        std::int32_t slot = store.findSlot(token);
        if (slot >= 0) {
            store.erase(static_cast<std::uint32_t>(slot));
            return true;
        }
    } else {
        auto range = by_token.equal_range(token.hash());
        for (auto it = range.first; it != range.second; ++it) {
            std::uint32_t slot = it->second;
            if (!(store.at(slot) == token))
                continue;
            for (BetaProbe &probe : probes) {
                auto pr = probe.buckets.equal_range(
                    tokenKeyHash(probe.spec, token));
                for (auto b = pr.first; b != pr.second; ++b) {
                    if (b->second == slot) {
                        probe.buckets.erase(b);
                        break;
                    }
                }
            }
            by_token.erase(it);
            store.erase(slot);
            if (store.size() < kMemIndexOff)
                dropIndexes();
            return true;
        }
    }
    // Remove raced ahead of its insert: park an anti-token. A
    // genuinely spurious remove would park forever, so the pending
    // count is capped — crossing the cap is a protocol bug, not load.
    ++tombstones[token];
    ++tombstones_pending;
    if (tombstones_pending > tombstone_high_water)
        tombstone_high_water = tombstones_pending;
    assert(tombstones_pending <= kTombstonePendingCap &&
           "tombstone flood: spurious removes are accumulating");
    return false;
}

void
BetaMemoryNode::clearTombstones()
{
    // Racy pre-check is fine: the barrier phase that calls this runs
    // single-threaded, and a memory that never parked a tombstone
    // this cycle has nothing to clear or sample.
    if (tombstones_pending == 0 && tombstone_high_water == 0)
        return;
    std::lock_guard lock(mutex);
    tombstones.clear();
    tombstones_pending = 0;
    tombstone_high_water = 0; // peak is per cycle; barriers sample it
}

void
BetaMemoryNode::clearState()
{
    std::lock_guard lock(mutex);
    store.clear();
    dropIndexes();
    tombstones.clear();
    tombstones_pending = 0;
    tombstone_high_water = 0;
}

void
BetaMemoryNode::rebuildIndexes()
{
    std::lock_guard lock(mutex);
    if (store.size() >= kMemIndexOn)
        buildIndexes();
    else
        dropIndexes();
}

bool
evalFlatTests(const FlatTests &flat, const Token &token,
              const ops5::Wme &wme, const ops5::SymbolTable &syms)
{
    if (flat.all_eq) {
        // Eq needs no symbol table and no predicate dispatch.
        for (std::uint32_t i = 0; i < flat.n; ++i) {
            if (!(wme.field(flat.wme_fields[i]) ==
                  token[flat.token_ces[i]]->field(flat.token_fields[i])))
                return false;
        }
        return true;
    }
    for (std::uint32_t i = 0; i < flat.n; ++i) {
        if (!ops5::evalPredicate(
                static_cast<ops5::Predicate>(flat.preds[i]),
                wme.field(flat.wme_fields[i]),
                token[flat.token_ces[i]]->field(flat.token_fields[i]),
                syms))
            return false;
    }
    return true;
}

bool
evalJoinTests(const std::vector<JoinTest> &tests, const Token &token,
              const ops5::Wme &wme, const ops5::SymbolTable &syms)
{
    for (const JoinTest &t : tests) {
        const ops5::Value &lhs = wme.field(t.wme_field);
        const ops5::Value &rhs =
            token[t.token_ce]->field(t.token_field);
        if (!ops5::evalPredicate(t.pred, lhs, rhs, syms))
            return false;
    }
    return true;
}

bool
evalJoinTests(const std::vector<JoinTest> &tests,
              const std::vector<const ops5::Wme *> &tuple,
              const ops5::Wme &wme, const ops5::SymbolTable &syms)
{
    for (const JoinTest &t : tests) {
        const ops5::Value &lhs = wme.field(t.wme_field);
        const ops5::Value &rhs =
            tuple[t.token_ce]->field(t.token_field);
        if (!ops5::evalPredicate(t.pred, lhs, rhs, syms))
            return false;
    }
    return true;
}

void
NotNode::buildIndexes()
{
    entry_index.clear();
    entry_index.reserve(entries.size() * 2);
    for (std::size_t i = 0; i < entries.size(); ++i)
        entry_index.emplace(entries[i].token.hash(),
                            static_cast<std::uint32_t>(i));
    idx_active = true;
}

void
NotNode::dropIndexes()
{
    entry_index.clear();
    idx_active = false;
}

void
NotNode::addEntry(Token token, int count)
{
    if (idx_active)
        entry_index.emplace(token.hash(),
                            static_cast<std::uint32_t>(entries.size()));
    entries.push_back({std::move(token), count});
    if (!idx_active && entries.size() >= kMemIndexOn)
        buildIndexes();
}

int
NotNode::removeEntry(const Token &token)
{
    if (!idx_active) {
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (!(entries[i].token == token))
                continue;
            int count = entries[i].count;
            entries[i] = std::move(entries.back());
            entries.pop_back();
            return count;
        }
        return -1;
    }
    auto range = entry_index.equal_range(token.hash());
    for (auto it = range.first; it != range.second; ++it) {
        std::uint32_t i = it->second;
        if (!(entries[i].token == token))
            continue;
        int count = entries[i].count;
        entry_index.erase(it);
        std::uint32_t last =
            static_cast<std::uint32_t>(entries.size() - 1);
        if (i != last) {
            entries[i] = std::move(entries[last]);
            // Re-point the moved entry's index record at slot i.
            auto moved = entry_index.equal_range(entries[i].token.hash());
            for (auto m = moved.first; m != moved.second; ++m) {
                if (m->second == last) {
                    m->second = i;
                    break;
                }
            }
        }
        entries.pop_back();
        if (entries.size() < kMemIndexOff)
            dropIndexes();
        return count;
    }
    return -1;
}

void
NotNode::clearState()
{
    std::lock_guard lock(mutex);
    entries.clear();
    dropIndexes();
}

void
NotNode::rebuildIndexes()
{
    std::lock_guard lock(mutex);
    if (entries.size() >= kMemIndexOn)
        buildIndexes();
    else
        dropIndexes();
}

} // namespace psm::rete
