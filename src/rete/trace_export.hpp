/**
 * @file
 * Chrome-trace-event export: real wall-clock task spans from the
 * host-thread matchers and simulated TaskSpans from the PSM
 * simulator, emitted in the same JSON format so both schedules load
 * side by side in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Two halves:
 *  - SpanRecorder collects {node, worker, start_ns, end_ns} spans
 *    during a match run. Per-worker, cache-line-padded vectors — the
 *    recording cost is two steady_clock reads and one push_back, paid
 *    only while a recorder is attached.
 *  - ChromeEvent + writeChromeTrace() serialise any span collection
 *    as a JSON array of complete ("ph":"X") trace events. Real spans
 *    map workers to tids; simulated spans map the scheduler's
 *    processor/cluster assignment to tids under a separate pid, so
 *    the viewer shows "what the hardware did" above "what the
 *    simulator predicted".
 */

#ifndef PSM_RETE_TRACE_EXPORT_HPP
#define PSM_RETE_TRACE_EXPORT_HPP

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rete/nodes.hpp"
#include "rete/trace.hpp"

namespace psm::rete {

/** One completed real-time span (a task, or a whole cycle). */
struct RealSpan
{
    int node_id = -1;         ///< -1 for cycle-level spans
    NodeKind kind = NodeKind::Root;
    bool insert = true;
    std::uint32_t cycle = 0;
    std::uint64_t start_ns = 0; ///< steady-clock, process-relative
    std::uint64_t end_ns = 0;
};

/** Monotonic nanosecond clock shared by all recorders. */
std::uint64_t spanClockNanos();

/**
 * Collects real wall-clock spans from a (possibly parallel) match
 * run. record() is called from worker threads, each writing only its
 * own lane; cycle spans come from the submitting thread (lane 0).
 * Collection (spans()) must not run concurrently with recording.
 */
class SpanRecorder
{
  public:
    explicit SpanRecorder(std::size_t n_workers = 1);

    void
    record(std::size_t worker, const RealSpan &span)
    {
        lanes_[worker % lanes_.size()].spans.push_back(span);
    }

    /** Brackets one recognize-act cycle (submitting thread only). */
    void beginCycle(std::uint32_t cycle);
    void endCycle();

    std::size_t workers() const { return lanes_.size(); }

    /** Task spans of @p worker, in recording order. */
    const std::vector<RealSpan> &spans(std::size_t worker) const
    {
        return lanes_[worker % lanes_.size()].spans;
    }

    /** Cycle-level spans, in cycle order. */
    const std::vector<RealSpan> &cycleSpans() const
    {
        return cycle_spans_;
    }

    void clear();

  private:
    struct alignas(64) Lane
    {
        std::vector<RealSpan> spans;
    };

    std::vector<Lane> lanes_;
    std::vector<RealSpan> cycle_spans_;
    RealSpan open_cycle_;
    bool cycle_open_ = false;
};

/** One Chrome trace event ("ph":"X", complete event). */
struct ChromeEvent
{
    std::string name;
    std::string cat;
    double ts_us = 0;  ///< start, microseconds
    double dur_us = 0; ///< duration, microseconds
    int pid = 1;
    int tid = 0;
    std::string args_json; ///< spliced verbatim as "args": {...}
};

/** Serialises @p events as a Perfetto-loadable JSON array. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<ChromeEvent> &events);

/** writeChromeTrace() to @p path. @return false on I/O failure. */
bool saveChromeTrace(const std::string &path,
                     const std::vector<ChromeEvent> &events);

/**
 * Converts a real-span recording to Chrome events: one tid per
 * worker, cycle spans on their own tid, all under @p pid. Node names
 * come from the node kind and id ("join#12").
 */
std::vector<ChromeEvent> chromeEventsFromReal(const SpanRecorder &rec,
                                              int pid = 1);

/**
 * Converts a simulated schedule to Chrome events under @p pid.
 * Simulated time (cost-model instructions) is scaled by
 * @p us_per_instr so real and simulated traces share a time axis;
 * pass 1.0 to keep raw instruction units. Each span's tid is a dense
 * processor lane within its cluster (derived greedily from span
 * overlap, since the simulator reports only the cluster).
 *
 * Header-only template so psm_rete needs no dependency on the
 * simulator; any SpanT with activation_id/start/end/cluster fields
 * works (psm::sim::TaskSpan in practice).
 */
template <typename SpanT>
std::vector<ChromeEvent>
chromeEventsFromSim(const TraceRecorder &trace,
                    const std::vector<SpanT> &spans, double us_per_instr,
                    int pid = 2)
{
    // Map activation id -> record for naming (ids are 1-based and
    // dense in practice, but don't rely on it).
    std::vector<ChromeEvent> events;
    events.reserve(spans.size());

    // Greedy lane assignment per cluster: reuse the first lane whose
    // previous span ended by our start.
    struct Lane
    {
        int cluster;
        double free_at;
    };
    std::vector<Lane> lanes;

    // Spans ordered by start time for lane packing.
    std::vector<const SpanT *> ordered;
    ordered.reserve(spans.size());
    for (const SpanT &s : spans)
        ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanT *a, const SpanT *b) {
                  return a->start < b->start;
              });

    for (const SpanT *s : ordered) {
        int lane = -1;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            if (lanes[i].cluster == s->cluster &&
                lanes[i].free_at <= s->start + 1e-9) {
                lane = static_cast<int>(i);
                break;
            }
        }
        if (lane < 0) {
            lanes.push_back({s->cluster, 0.0});
            lane = static_cast<int>(lanes.size()) - 1;
        }
        lanes[static_cast<std::size_t>(lane)].free_at = s->end;

        const ActivationRecord *rec = nullptr;
        if (s->activation_id >= 1 &&
            s->activation_id <= trace.records().size()) {
            const ActivationRecord &cand =
                trace.records()[s->activation_id - 1];
            if (cand.id == s->activation_id)
                rec = &cand;
        }
        if (!rec) {
            for (const ActivationRecord &cand : trace.records()) {
                if (cand.id == s->activation_id) {
                    rec = &cand;
                    break;
                }
            }
        }

        ChromeEvent ev;
        ev.cat = "sim";
        ev.pid = pid;
        ev.tid = lane;
        ev.ts_us = s->start * us_per_instr;
        ev.dur_us = (s->end - s->start) * us_per_instr;
        if (rec) {
            ev.name = std::string(nodeKindName(rec->kind)) + "#" +
                      std::to_string(rec->node_id);
            ev.args_json = "{\"activation\": " +
                           std::to_string(rec->id) +
                           ", \"cycle\": " + std::to_string(rec->cycle) +
                           ", \"cluster\": " +
                           std::to_string(s->cluster) + "}";
        } else {
            ev.name = "activation#" + std::to_string(s->activation_id);
            ev.args_json =
                "{\"cluster\": " + std::to_string(s->cluster) + "}";
        }
        events.push_back(std::move(ev));
    }
    return events;
}

} // namespace psm::rete

#endif // PSM_RETE_TRACE_EXPORT_HPP
