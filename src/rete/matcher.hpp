/**
 * @file
 * The sequential Rete matcher — the paper's "best known uniprocessor
 * implementation" baseline, and the trace generator for the PSM
 * simulator.
 */

#ifndef PSM_RETE_MATCHER_HPP
#define PSM_RETE_MATCHER_HPP

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/matcher.hpp"
#include "core/telemetry.hpp"
#include "rete/cost_model.hpp"
#include "rete/network.hpp"
#include "rete/trace.hpp"
#include "rete/trace_export.hpp"

namespace psm::rete {

/**
 * One pending node activation while draining the match queue.
 * Alpha-side items carry a WME, beta-side items a token.
 */
struct WorkItem
{
    Node *node = nullptr;
    Side side = Side::Right;
    bool insert = true;
    Token token;
    const ops5::Wme *wme = nullptr;
    std::uint64_t parent = 0; ///< trace id of the spawning activation
};

/**
 * Sequential Rete matcher over a (usually fully shared) Network.
 *
 * Processes each WM change to fixpoint with a stack of node
 * activations (depth-first — load-bearing for self-join pairing, see
 * docs/ARCHITECTURE.md §2), updating memories, not-node counts, and
 * the conflict set. With a TraceSink attached it emits one
 * ActivationRecord per activation, carrying dependency edges and
 * cost-model instruction counts — the input format of the PSM
 * simulator.
 *
 * Join activations always *probe* the memory-node hash indexes
 * (every all-equality join gets probe buckets registered at network
 * build; see nodes.hpp), but the *modeled* cost they report follows
 * the configuration: the plain matcher charges the classic full-scan
 * instruction counts (so PSM simulator traces are unchanged), while
 * `hash_joins` charges the actually probed bucket sizes plus index
 * maintenance — the style of "further optimization to the OPS
 * compiler" behind the paper's 400-800 wme-changes/sec serial
 * projection (Section 2.2). Indexing never changes results, only the
 * work done (asserted by the equivalence suite).
 */
class ReteMatcher : public core::Matcher
{
  public:
    explicit ReteMatcher(std::shared_ptr<Network> network,
                         CostModel cost_model = {},
                         bool hash_joins = false);

    /** Convenience: builds a fully shared network for @p program. */
    explicit ReteMatcher(std::shared_ptr<const ops5::Program> program,
                         CostModel cost_model = {},
                         bool hash_joins = false);

    void processChanges(std::span<const ops5::WmeChange> changes) override;

    ops5::ConflictSet &conflictSet() override { return conflict_set_; }
    const ops5::ConflictSet &
    conflictSet() const override
    {
        return conflict_set_;
    }

    core::MatchStats stats() const override { return stats_; }

    std::string
    name() const override
    {
        return hash_joins_ ? "rete-serial-hashed" : "rete-serial";
    }

    Network &network() { return *network_; }

    /** Attaches a trace sink (nullptr detaches). Not owned. */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** Attaches a real-time span recorder (nullptr detaches). One
     *  lane suffices; the serial matcher records on lane 0. */
    void setSpanRecorder(SpanRecorder *rec) { spans_ = rec; }

    telemetry::Registry *enableTelemetry() override;
    telemetry::Registry *telemetry() override { return tel_.get(); }
    const telemetry::Registry *
    telemetry() const override
    {
        return tel_.get();
    }

    /** Recognize-act cycles processed so far. */
    std::uint32_t cycle() const { return cycle_; }

    /**
     * Tombstones parked across all beta memories. Always zero after
     * a sequential fixpoint; exposed so tests can assert it.
     */
    std::size_t pendingTombstones() const;

    /**
     * Rebuilds the memory-node hash indexes from the current memory
     * contents (delegates to Network::rebuildIndexes). The durable
     * layer's state-restore path fills alpha/beta memories and
     * not-node entries directly (bypassing processChanges), so the
     * indexes must be reconstructed afterwards.
     */
    void rebuildIndexes();

  private:
    void processItem(const WorkItem &item);
    void emit(WorkItem item, std::uint64_t parent);

    std::uint64_t
    recordActivation(const WorkItem &item, NodeKind kind,
                     std::uint32_t cost);

    void processConstTest(const WorkItem &item);
    void processAlphaMemory(const WorkItem &item);
    void processBetaMemory(const WorkItem &item);
    void processJoin(const WorkItem &item);
    void processNot(const WorkItem &item);
    void processTerminal(const WorkItem &item);

    std::shared_ptr<Network> network_;
    CostModel cost_;
    bool hash_joins_;
    /** Beta memories cached for the per-cycle tombstone barrier. */
    std::vector<BetaMemoryNode *> beta_memories_;
    ops5::ConflictSet conflict_set_;
    core::MatchStats stats_;
    TraceSink *sink_ = nullptr;
    SpanRecorder *spans_ = nullptr;
    std::unique_ptr<telemetry::Registry> tel_;

    std::deque<WorkItem> queue_;
    std::uint64_t next_activation_id_ = 1;
    std::uint64_t current_parent_ = 0; ///< id of the item in flight
    std::uint32_t cycle_ = 0;
    std::uint32_t change_index_ = 0;
};

} // namespace psm::rete

#endif // PSM_RETE_MATCHER_HPP
