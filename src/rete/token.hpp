/**
 * @file
 * Match tokens and the slab store that owns them.
 *
 * A token records the WMEs matching a prefix of a production's
 * positive condition elements. Tokens are flat pointer tuples rather
 * than parent-linked chains: joins copy a handful of pointers, and
 * deletion matches tokens by value, so memory-node state is
 * self-contained and safe to mutate from fine-grain parallel tasks
 * without cross-token lifetime coupling.
 *
 * Layout: up to kInline WME pointers live inside the Token itself
 * (small-buffer optimization) — deeper tokens spill to the heap. The
 * tuple hash is maintained incrementally on every extend/push, so
 * hashing a token for the memory-node indexes is a field read, not a
 * walk. TokenStore is a slot-stable slab: a token keeps its slot index
 * for its whole life, so hash indexes can reference tokens by a
 * 32-bit slot instead of copying the tuple, and erase never moves
 * other tokens.
 */

#ifndef PSM_RETE_TOKEN_HPP
#define PSM_RETE_TOKEN_HPP

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "ops5/wme.hpp"

namespace psm::rete {

/** An ordered tuple of WMEs matching a CE prefix. */
class Token
{
  public:
    /** Inline capacity; covers every calibrated preset's CE depth. */
    static constexpr std::size_t kInline = 4;

    Token() = default;

    explicit Token(const ops5::Wme *wme)
    {
        inline_[0] = wme;
        size_ = 1;
        hash_ = mix(kSeed, wme);
    }

    explicit Token(const std::vector<const ops5::Wme *> &wmes)
    {
        reserve(wmes.size());
        for (const ops5::Wme *w : wmes)
            push_back(w);
    }

    Token(const Token &o) { copyFrom(o); }

    Token(Token &&o) noexcept { moveFrom(o); }

    Token &
    operator=(const Token &o)
    {
        if (this != &o) {
            release();
            copyFrom(o);
        }
        return *this;
    }

    Token &
    operator=(Token &&o) noexcept
    {
        if (this != &o) {
            release();
            moveFrom(o);
        }
        return *this;
    }

    ~Token() { release(); }

    /** Token extended by one WME (the join operation). */
    Token
    extend(const ops5::Wme *wme) const
    {
        Token t;
        t.size_ = size_ + 1;
        if (t.size_ > kInline) {
            t.heap_ = new const ops5::Wme *[t.size_];
            t.cap_ = t.size_;
        }
        std::memcpy(t.data(), data(), size_ * sizeof(const ops5::Wme *));
        t.data()[size_] = wme;
        t.hash_ = mix(hash_, wme);
        return t;
    }

    void
    reserve(std::size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void
    push_back(const ops5::Wme *wme)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        data()[size_++] = wme;
        hash_ = mix(hash_, wme);
    }

    /** Drops the last WME; recomputes the hash (O(size)). */
    void
    pop_back()
    {
        assert(size_ > 0);
        --size_;
        hash_ = kSeed;
        for (std::size_t i = 0; i < size_; ++i)
            hash_ = mix(hash_, data()[i]);
    }

    const ops5::Wme *operator[](std::size_t i) const { return data()[i]; }
    const ops5::Wme *back() const { return data()[size_ - 1]; }

    const ops5::Wme *const *begin() const { return data(); }
    const ops5::Wme *const *end() const { return data() + size_; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Incrementally maintained tuple hash. */
    std::uint64_t hash() const { return hash_; }

    std::vector<const ops5::Wme *>
    toVector() const
    {
        return {begin(), end()};
    }

    bool
    operator==(const Token &o) const
    {
        // Hash is a pure function of the tuple, so it acts as a
        // cheap reject before the pointer comparison.
        return size_ == o.size_ && hash_ == o.hash_ &&
               std::memcmp(data(), o.data(),
                           size_ * sizeof(const ops5::Wme *)) == 0;
    }

  private:
    static constexpr std::uint64_t kSeed = 0x51ed270b;

    static std::uint64_t
    mix(std::uint64_t h, const ops5::Wme *w)
    {
        return h * 0x9e3779b97f4a7c15ULL +
               std::hash<const void *>()(w);
    }

    const ops5::Wme **data() { return heap_ ? heap_ : inline_; }
    const ops5::Wme *const *data() const
    {
        return heap_ ? heap_ : inline_;
    }

    void
    grow(std::size_t n)
    {
        if (n < kInline * 2)
            n = kInline * 2;
        auto **next = new const ops5::Wme *[n];
        std::memcpy(next, data(), size_ * sizeof(const ops5::Wme *));
        delete[] heap_;
        heap_ = next;
        cap_ = n;
    }

    void
    copyFrom(const Token &o)
    {
        size_ = o.size_;
        hash_ = o.hash_;
        if (size_ > kInline) {
            heap_ = new const ops5::Wme *[size_];
            cap_ = size_;
        }
        std::memcpy(data(), o.data(), size_ * sizeof(const ops5::Wme *));
    }

    void
    moveFrom(Token &o) noexcept
    {
        size_ = o.size_;
        hash_ = o.hash_;
        if (o.heap_) {
            heap_ = o.heap_;
            cap_ = o.cap_;
            o.heap_ = nullptr;
        } else {
            std::memcpy(inline_, o.inline_,
                        size_ * sizeof(const ops5::Wme *));
        }
        o.size_ = 0;
        o.cap_ = kInline;
        o.hash_ = kSeed;
    }

    void
    release()
    {
        delete[] heap_;
        heap_ = nullptr;
        cap_ = kInline;
    }

    const ops5::Wme *inline_[kInline] = {};
    const ops5::Wme **heap_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = kInline;
    std::uint64_t hash_ = kSeed;
};

/** Hash over the WME pointer tuple (reads the cached hash). */
struct TokenHash
{
    std::size_t
    operator()(const Token &t) const
    {
        return static_cast<std::size_t>(t.hash());
    }
};

/**
 * Slot-stable token slab. insert() returns a slot id that stays valid
 * until erase(slot); freed slots are recycled LIFO. Memory-node
 * indexes store these 32-bit slots instead of token copies, and the
 * slab keeps live tokens dense enough to walk cache-friendly.
 */
class TokenStore
{
  public:
    static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

    std::uint32_t
    insert(Token token)
    {
        std::uint32_t slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
            slots_[slot] = std::move(token);
            live_[slot] = 1;
        } else {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.push_back(std::move(token));
            live_.push_back(1);
        }
        ++live_count_;
        return slot;
    }

    void
    erase(std::uint32_t slot)
    {
        assert(slot < slots_.size() && live_[slot]);
        slots_[slot] = Token{}; // releases any heap spill now
        live_[slot] = 0;
        free_.push_back(slot);
        --live_count_;
    }

    const Token &
    at(std::uint32_t slot) const
    {
        assert(slot < slots_.size() && live_[slot]);
        return slots_[slot];
    }

    bool
    liveAt(std::uint32_t slot) const
    {
        return slot < slots_.size() && live_[slot] != 0;
    }

    /**
     * First live slot holding a token equal to @p t, or -1. Linear
     * over the slab — the fallback lookup for memories below the
     * adaptive-index threshold, where the scan is a handful of
     * hash-rejected compares.
     */
    std::int32_t
    findSlot(const Token &t) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (live_[i] && slots_[i] == t)
                return static_cast<std::int32_t>(i);
        return -1;
    }

    std::size_t size() const { return live_count_; }
    bool empty() const { return live_count_ == 0; }

    /** Slots ever allocated (live + freed); the walk bound. */
    std::size_t slotCount() const { return slots_.size(); }

    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (live_[i])
                f(slots_[i]);
    }

    template <typename F>
    void
    forEachSlot(F &&f) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (live_[i])
                f(static_cast<std::uint32_t>(i), slots_[i]);
    }

    void
    clear()
    {
        slots_.clear();
        live_.clear();
        free_.clear();
        live_count_ = 0;
    }

  private:
    std::vector<Token> slots_;
    std::vector<std::uint8_t> live_;
    std::vector<std::uint32_t> free_;
    std::size_t live_count_ = 0;
};

} // namespace psm::rete

#endif // PSM_RETE_TOKEN_HPP
