/**
 * @file
 * Match tokens: ordered tuples of WME pointers.
 *
 * A token records the WMEs matching a prefix of a production's
 * positive condition elements. Tokens here are flat pointer vectors
 * rather than parent-linked chains: joins copy a handful of pointers,
 * and deletion matches tokens by value, so memory-node state is
 * self-contained and safe to mutate from fine-grain parallel tasks
 * without cross-token lifetime coupling.
 */

#ifndef PSM_RETE_TOKEN_HPP
#define PSM_RETE_TOKEN_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "ops5/wme.hpp"

namespace psm::rete {

/** An ordered tuple of WMEs matching a CE prefix. */
struct Token
{
    std::vector<const ops5::Wme *> wmes;

    Token() = default;

    explicit Token(const ops5::Wme *wme) : wmes{wme} {}

    /** Token extended by one WME (the join operation). */
    Token
    extend(const ops5::Wme *wme) const
    {
        Token t;
        t.wmes.reserve(wmes.size() + 1);
        t.wmes = wmes;
        t.wmes.push_back(wme);
        return t;
    }

    std::size_t size() const { return wmes.size(); }
    bool operator==(const Token &o) const { return wmes == o.wmes; }
};

/** Hash over the WME pointer tuple. */
struct TokenHash
{
    std::size_t
    operator()(const Token &t) const
    {
        std::size_t h = 0x51ed270b;
        for (const ops5::Wme *w : t.wmes)
            h = h * 0x9e3779b97f4a7c15ULL +
                std::hash<const void *>()(w);
        return h;
    }
};

} // namespace psm::rete

#endif // PSM_RETE_TOKEN_HPP
