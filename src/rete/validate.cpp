#include "rete/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "ops5/conflict.hpp"

namespace psm::rete {

void
ValidationResult::merge(ValidationResult other)
{
    errors.insert(errors.end(),
                  std::make_move_iterator(other.errors.begin()),
                  std::make_move_iterator(other.errors.end()));
}

std::string
ValidationResult::summary(std::size_t max_errors) const
{
    std::ostringstream os;
    std::size_t n = std::min(max_errors, errors.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << "; ";
        os << errors[i];
    }
    if (errors.size() > n)
        os << "; ... (" << errors.size() - n << " more)";
    return os.str();
}

namespace {

void
nodeError(ValidationResult &result, const Node *node,
          const std::string &msg)
{
    std::ostringstream os;
    os << nodeKindName(node->kind) << " node " << node->id << ": " << msg;
    result.errors.push_back(os.str());
}

// --- structural invariants ---------------------------------------------

class StructureValidator
{
  public:
    explicit StructureValidator(const Network &net) : net_(net) {}

    ValidationResult
    run()
    {
        const auto &nodes = net_.nodes();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const Node *node = nodes[i].get();
            if (node->id != static_cast<int>(i)) {
                nodeError(result_, node,
                          "id does not match its index " +
                              std::to_string(i));
            }
            switch (node->kind) {
              case NodeKind::ConstTest:
                checkConstTest(
                    static_cast<const ConstTestNode *>(node));
                break;
              case NodeKind::AlphaMemory:
                checkAlphaMemory(
                    static_cast<const AlphaMemoryNode *>(node));
                break;
              case NodeKind::BetaMemory:
                checkBetaMemory(
                    static_cast<const BetaMemoryNode *>(node));
                break;
              case NodeKind::Join:
                checkTwoInput(node,
                              static_cast<const JoinNode *>(node)->left,
                              static_cast<const JoinNode *>(node)->right,
                              static_cast<const JoinNode *>(node)->output);
                break;
              case NodeKind::Not:
                checkTwoInput(node,
                              static_cast<const NotNode *>(node)->left,
                              static_cast<const NotNode *>(node)->right,
                              static_cast<const NotNode *>(node)->output);
                break;
              case NodeKind::Terminal:
                if (!static_cast<const TerminalNode *>(node)->production)
                    nodeError(result_, node, "null production");
                break;
              case NodeKind::Root:
                break;
            }
        }
        checkProducers();
        checkTerminalFeeders();
        return std::move(result_);
    }

  private:
    void
    checkConstTest(const ConstTestNode *ct)
    {
        for (const Node *succ : ct->successors) {
            if (!succ) {
                nodeError(result_, ct, "null successor");
                continue;
            }
            if (succ->kind != NodeKind::ConstTest &&
                succ->kind != NodeKind::AlphaMemory) {
                nodeError(result_, ct,
                          std::string("successor of unexpected kind ") +
                              nodeKindName(succ->kind));
            }
        }
    }

    void
    checkAlphaMemory(const AlphaMemoryNode *am)
    {
        if (!net_.options().share_alpha && am->successors.size() > 1) {
            nodeError(result_, am,
                      "private-state network violated: " +
                          std::to_string(am->successors.size()) +
                          " successors");
        }
        for (const Node *succ : am->successors) {
            if (!succ) {
                nodeError(result_, am, "null successor");
                continue;
            }
            const AlphaMemoryNode *right = nullptr;
            if (succ->kind == NodeKind::Join)
                right = static_cast<const JoinNode *>(succ)->right;
            else if (succ->kind == NodeKind::Not)
                right = static_cast<const NotNode *>(succ)->right;
            else {
                nodeError(result_, am,
                          std::string("successor of unexpected kind ") +
                              nodeKindName(succ->kind));
                continue;
            }
            if (right != am) {
                nodeError(result_, am,
                          "successor two-input node " +
                              std::to_string(succ->id) +
                              " does not use it as right input");
            }
        }
    }

    void
    checkBetaMemory(const BetaMemoryNode *bm)
    {
        if (!net_.options().share_two_input && bm != net_.top() &&
            bm->successors.size() > 1) {
            nodeError(result_, bm,
                      "private-state network violated: " +
                          std::to_string(bm->successors.size()) +
                          " successors");
        }
        for (const Node *succ : bm->successors) {
            if (!succ) {
                nodeError(result_, bm, "null successor");
                continue;
            }
            if (succ->kind == NodeKind::Terminal) {
                ++terminal_feeders_[succ->id];
                continue;
            }
            const BetaMemoryNode *left = nullptr;
            if (succ->kind == NodeKind::Join)
                left = static_cast<const JoinNode *>(succ)->left;
            else if (succ->kind == NodeKind::Not)
                left = static_cast<const NotNode *>(succ)->left;
            else {
                nodeError(result_, bm,
                          std::string("successor of unexpected kind ") +
                              nodeKindName(succ->kind));
                continue;
            }
            if (left != bm) {
                nodeError(result_, bm,
                          "successor two-input node " +
                              std::to_string(succ->id) +
                              " does not use it as left input");
            }
        }
    }

    void
    checkTwoInput(const Node *node, const BetaMemoryNode *left,
                  const AlphaMemoryNode *right,
                  const BetaMemoryNode *output)
    {
        if (!left || !right || !output) {
            nodeError(result_, node, "null input/output memory");
            return;
        }
        ++producers_[output->id];
        // The node must be registered as successor of both inputs:
        // the matchers dispatch through those successor lists, so a
        // missing edge silently drops activations. Linear std::find is
        // fine here — successor lists are bounded by per-memory node
        // fan-out (a compile-time property, typically < 10), and this
        // runs once per validation pass, not on the match hot path.
        if (std::find(left->successors.begin(), left->successors.end(),
                      node) == left->successors.end())
            nodeError(result_, node,
                      "not registered as successor of its left memory");
        if (std::find(right->successors.begin(), right->successors.end(),
                      node) == right->successors.end())
            nodeError(result_, node,
                      "not registered as successor of its right memory");
    }

    void
    checkProducers()
    {
        for (const auto &node : net_.nodes()) {
            if (node->kind != NodeKind::BetaMemory ||
                node.get() == net_.top())
                continue;
            int n = producers_.count(node->id) ? producers_[node->id] : 0;
            if (n != 1) {
                nodeError(result_, node.get(),
                          "expected exactly one producing two-input "
                          "node, found " +
                              std::to_string(n));
            }
        }
    }

    void
    checkTerminalFeeders()
    {
        for (const TerminalNode *term : net_.terminals()) {
            int n = terminal_feeders_.count(term->id)
                        ? terminal_feeders_[term->id]
                        : 0;
            if (n != 1) {
                nodeError(result_, term,
                          "expected exactly one feeding beta memory, "
                          "found " +
                              std::to_string(n));
            }
        }
    }

    const Network &net_;
    ValidationResult result_;
    std::map<int, int> producers_;        ///< beta id -> producer count
    std::map<int, int> terminal_feeders_; ///< terminal id -> feeder count
};

// --- state invariants --------------------------------------------------

/** Ground-truth recomputation context. */
class Validator
{
  public:
    Validator(const Network &net,
              const std::vector<const ops5::Wme *> &live,
              const ops5::ConflictSet *conflict_set)
        : net_(net), live_(live), conflict_set_(conflict_set)
    {
        // Map each two-input node's output memory back to it.
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::Join) {
                auto *j = static_cast<JoinNode *>(node.get());
                producer_[j->output->id] = j;
            } else if (node->kind == NodeKind::Not) {
                auto *n = static_cast<NotNode *>(node.get());
                producer_[n->output->id] = n;
            }
        }
    }

    ValidationResult
    run()
    {
        checkAlphaChains();
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::BetaMemory &&
                node.get() != net_.top()) {
                checkBetaMemory(
                    static_cast<const BetaMemoryNode *>(node.get()));
            }
            if (node->kind == NodeKind::Join)
                checkJoinAgreement(
                    static_cast<const JoinNode *>(node.get()));
            if (node->kind == NodeKind::Not)
                checkNotCounts(static_cast<const NotNode *>(node.get()));
        }
        if (conflict_set_)
            checkConflictSet();
        return std::move(result_);
    }

  private:
    void
    error(const Node *node, const std::string &msg)
    {
        nodeError(result_, node, msg);
    }

    /** Compares multisets, reporting the difference. */
    template <typename T>
    void
    compareSets(const Node *node, std::vector<T> actual,
                std::vector<T> expected, const char *what)
    {
        std::sort(actual.begin(), actual.end());
        std::sort(expected.begin(), expected.end());
        if (actual != expected) {
            std::ostringstream os;
            os << what << " mismatch: " << actual.size()
               << " stored vs " << expected.size() << " expected";
            error(node, os.str());
        }
    }

    // --- alpha network -------------------------------------------------

    void
    checkAlphaChains()
    {
        // Walk every class root chain, accumulating tests. Only
        // classes with live WMEs can have non-empty memories; chains
        // of other classes are covered by the emptiness check below.
        std::vector<const AlphaTest *> tests;
        std::map<ops5::SymbolId, std::vector<const ops5::Wme *>>
            by_class;
        for (const ops5::Wme *wme : live_)
            by_class[wme->className()].push_back(wme);

        checked_alpha_.clear();
        for (const auto &[cls, wmes] : by_class) {
            for (Node *head : net_.classRoots(cls))
                walkAlpha(head, wmes, tests);
        }
        // Alpha memories for classes with no live WMEs must be empty.
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::AlphaMemory &&
                !checked_alpha_.count(node->id)) {
                auto *am =
                    static_cast<const AlphaMemoryNode *>(node.get());
                if (!am->items.empty())
                    error(am, "expected empty (no live WMEs of its "
                              "class)");
            }
        }
    }

    void
    walkAlpha(Node *node, const std::vector<const ops5::Wme *> &wmes,
              std::vector<const AlphaTest *> &tests)
    {
        if (node->kind == NodeKind::AlphaMemory) {
            auto *am = static_cast<AlphaMemoryNode *>(node);
            checked_alpha_.insert(am->id);
            std::vector<const ops5::Wme *> expected;
            for (const ops5::Wme *wme : wmes) {
                bool pass = std::all_of(
                    tests.begin(), tests.end(),
                    [&](const AlphaTest *t) {
                        return t->eval(*wme,
                                       net_.program().symbols());
                    });
                if (pass)
                    expected.push_back(wme);
            }
            compareSets(am, am->items, std::move(expected), "alpha");
            return;
        }
        auto *ct = static_cast<ConstTestNode *>(node);
        tests.push_back(&ct->test);
        for (Node *succ : ct->successors)
            walkAlpha(succ, wmes, tests);
        tests.pop_back();
    }

    // --- beta network --------------------------------------------------

    const std::vector<Token> &
    expectedTokens(const BetaMemoryNode *mem)
    {
        auto it = expected_.find(mem->id);
        if (it != expected_.end())
            return it->second;
        if (mem == net_.top()) {
            return expected_.emplace(mem->id, std::vector<Token>{Token{}})
                .first->second;
        }

        std::vector<Token> out;
        const Node *prod = producer_.at(mem->id);
        const ops5::SymbolTable &syms = net_.program().symbols();
        if (prod->kind == NodeKind::Join) {
            auto *join = static_cast<const JoinNode *>(prod);
            // Ground truth for the right input: recompute from live
            // WMEs via the alpha check (items were already verified);
            // use the verified memory contents directly.
            for (const Token &left : expectedTokens(join->left)) {
                for (const ops5::Wme *wme : join->right->items) {
                    if (evalJoinTests(join->tests, left, *wme, syms))
                        out.push_back(left.extend(wme));
                }
            }
        } else {
            auto *not_node = static_cast<const NotNode *>(prod);
            for (const Token &left : expectedTokens(not_node->left)) {
                bool blocked = std::any_of(
                    not_node->right->items.begin(),
                    not_node->right->items.end(),
                    [&](const ops5::Wme *wme) {
                        return evalJoinTests(not_node->tests, left,
                                             *wme, syms);
                    });
                if (!blocked)
                    out.push_back(left);
            }
        }
        return expected_.emplace(mem->id, std::move(out)).first->second;
    }

    void
    checkBetaMemory(const BetaMemoryNode *mem)
    {
        std::vector<std::string> actual, expect;
        mem->store.forEach(
            [&](const Token &t) { actual.push_back(tokenKey(t)); });
        for (const Token &t : expectedTokens(mem))
            expect.push_back(tokenKey(t));
        compareSets(mem, std::move(actual), std::move(expect), "beta");
        if (mem->tombstoneCount() != 0)
            error(mem, "tombstones present outside a match phase");
    }

    /**
     * Left/right join agreement: the join's output memory must hold
     * exactly the cross-product of its ACTUAL input memories under
     * its tests. Where the global beta check diffs against ground
     * truth recomputed from live WMEs, this diffs neighbouring
     * memories against each other, so it localises which join stopped
     * agreeing with its own inputs.
     */
    void
    checkJoinAgreement(const JoinNode *join)
    {
        const ops5::SymbolTable &syms = net_.program().symbols();
        std::vector<std::string> actual, expect;
        join->output->store.forEach(
            [&](const Token &t) { actual.push_back(tokenKey(t)); });
        join->left->store.forEach([&](const Token &left) {
            for (const ops5::Wme *wme : join->right->items) {
                if (evalJoinTests(join->tests, left, *wme, syms))
                    expect.push_back(tokenKey(left.extend(wme)));
            }
        });
        compareSets(join, std::move(actual), std::move(expect),
                    "left/right join-output");
    }

    void
    checkNotCounts(const NotNode *not_node)
    {
        const ops5::SymbolTable &syms = net_.program().symbols();
        // Entries must mirror the left memory's expected tokens with
        // correct blocker counts.
        std::vector<std::string> actual, expect;
        for (const NotNode::Entry &e : not_node->entries) {
            actual.push_back(tokenKey(e.token) + "#" +
                             std::to_string(e.count));
        }
        for (const Token &left : expectedTokens(not_node->left)) {
            int count = 0;
            for (const ops5::Wme *wme : not_node->right->items) {
                if (evalJoinTests(not_node->tests, left, *wme, syms))
                    ++count;
            }
            expect.push_back(tokenKey(left) + "#" +
                             std::to_string(count));
        }
        compareSets(not_node, std::move(actual), std::move(expect),
                    "not-entry");
    }

    // --- conflict set --------------------------------------------------

    /**
     * The conflict set must hold exactly one live instantiation per
     * (production, token) in a terminal-feeding beta memory — the
     * matcher-vs-conflict-set agreement that every WM change has to
     * re-establish by its cycle barrier.
     */
    void
    checkConflictSet()
    {
        std::vector<std::string> expect;
        for (const auto &node : net_.nodes()) {
            if (node->kind != NodeKind::BetaMemory)
                continue;
            auto *bm = static_cast<const BetaMemoryNode *>(node.get());
            for (const Node *succ : bm->successors) {
                if (succ->kind != NodeKind::Terminal)
                    continue;
                auto *term = static_cast<const TerminalNode *>(succ);
                for (const Token &t : expectedTokens(bm)) {
                    expect.push_back(instKey(term->production->id(),
                                             t.toVector()));
                }
            }
        }
        std::vector<std::string> actual;
        for (const ops5::Instantiation &inst :
             conflict_set_->contents()) {
            actual.push_back(
                instKey(inst.production->id(), inst.wmes));
        }

        std::sort(actual.begin(), actual.end());
        std::sort(expect.begin(), expect.end());
        if (actual != expect) {
            std::ostringstream os;
            os << "conflict set disagrees with terminal memories: "
               << actual.size() << " live instantiations vs "
               << expect.size() << " expected";
            appendDiff(os, actual, expect);
            result_.errors.push_back(os.str());
        }
        if (conflict_set_->pendingTombstones() != 0) {
            result_.errors.push_back(
                "conflict set holds " +
                std::to_string(conflict_set_->pendingTombstones()) +
                " tombstones outside a match phase");
        }
    }

    static void
    appendDiff(std::ostringstream &os,
               const std::vector<std::string> &actual,
               const std::vector<std::string> &expect)
    {
        std::vector<std::string> missing, extra;
        std::set_difference(expect.begin(), expect.end(),
                            actual.begin(), actual.end(),
                            std::back_inserter(missing));
        std::set_difference(actual.begin(), actual.end(),
                            expect.begin(), expect.end(),
                            std::back_inserter(extra));
        if (!missing.empty())
            os << "; missing e.g. " << missing.front();
        if (!extra.empty())
            os << "; spurious e.g. " << extra.front();
    }

    static std::string
    instKey(int production_id, const std::vector<const ops5::Wme *> &wmes)
    {
        std::ostringstream os;
        os << "p" << production_id << ":";
        for (const ops5::Wme *w : wmes)
            os << w->timeTag() << ",";
        return os.str();
    }

    static std::string
    tokenKey(const Token &t)
    {
        std::ostringstream os;
        for (const ops5::Wme *w : t)
            os << w->timeTag() << ",";
        return os.str();
    }

    const Network &net_;
    const std::vector<const ops5::Wme *> &live_;
    const ops5::ConflictSet *conflict_set_;
    ValidationResult result_;
    std::unordered_map<int, const Node *> producer_;
    std::unordered_map<int, std::vector<Token>> expected_;
    std::set<int> checked_alpha_;
};

// --- index <-> memory agreement ----------------------------------------

void
checkAlphaIndexes(ValidationResult &result, const AlphaMemoryNode *am)
{
    if (am->remove_misses != 0) {
        nodeError(result, am,
                  std::to_string(am->remove_misses) +
                      " removeWme miss(es): working memory and alpha "
                      "memory have desynced");
    }
    if (!am->indexed()) {
        // Below the adaptive threshold: index maps must be empty, or
        // a stale entry could serve a wrong probe after reactivation.
        if (!am->pos.empty()) {
            nodeError(result, am,
                      "inactive position index still holds " +
                          std::to_string(am->pos.size()) + " entries");
        }
        for (std::size_t p = 0; p < am->probes.size(); ++p) {
            if (!am->probes[p].buckets.empty())
                nodeError(result, am,
                          "inactive probe " + std::to_string(p) +
                              " still holds entries");
        }
        return;
    }
    if (am->pos.size() != am->items.size()) {
        nodeError(result, am,
                  "position index holds " +
                      std::to_string(am->pos.size()) + " entries for " +
                      std::to_string(am->items.size()) + " items");
    }
    for (std::size_t i = 0; i < am->items.size(); ++i) {
        auto it = am->pos.find(am->items[i]);
        if (it == am->pos.end()) {
            nodeError(result, am,
                      "item at slot " + std::to_string(i) +
                          " missing from position index");
        } else if (it->second != i) {
            nodeError(result, am,
                      "position index points item at slot " +
                          std::to_string(i) + " to slot " +
                          std::to_string(it->second));
        }
    }
    for (std::size_t p = 0; p < am->probes.size(); ++p) {
        const AlphaProbe &probe = am->probes[p];
        if (probe.buckets.size() != am->items.size()) {
            nodeError(result, am,
                      "probe " + std::to_string(p) + " indexes " +
                          std::to_string(probe.buckets.size()) +
                          " wmes but memory holds " +
                          std::to_string(am->items.size()));
            continue;
        }
        for (const ops5::Wme *wme : am->items) {
            auto range = probe.buckets.equal_range(
                wmeKeyHash(probe.spec, *wme));
            bool found = false;
            for (auto b = range.first; b != range.second; ++b) {
                if (b->second == wme) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                nodeError(result, am,
                          "probe " + std::to_string(p) +
                              " bucket missing a stored wme");
            }
        }
    }
}

void
checkBetaIndexes(ValidationResult &result, const BetaMemoryNode *bm)
{
    if (!bm->indexed()) {
        if (!bm->by_token.empty()) {
            nodeError(result, bm,
                      "inactive identity index still holds " +
                          std::to_string(bm->by_token.size()) +
                          " entries");
        }
        for (std::size_t p = 0; p < bm->probes.size(); ++p) {
            if (!bm->probes[p].buckets.empty())
                nodeError(result, bm,
                          "inactive probe " + std::to_string(p) +
                              " still holds entries");
        }
        return;
    }
    if (bm->by_token.size() != bm->store.size()) {
        nodeError(result, bm,
                  "identity index holds " +
                      std::to_string(bm->by_token.size()) +
                      " entries for " + std::to_string(bm->store.size()) +
                      " live tokens");
    }
    for (std::size_t p = 0; p < bm->probes.size(); ++p) {
        if (bm->probes[p].buckets.size() != bm->store.size()) {
            nodeError(result, bm,
                      "probe " + std::to_string(p) + " indexes " +
                          std::to_string(bm->probes[p].buckets.size()) +
                          " tokens but memory holds " +
                          std::to_string(bm->store.size()));
        }
    }
    bm->store.forEachSlot([&](std::uint32_t slot, const Token &token) {
        auto range = bm->by_token.equal_range(token.hash());
        bool found = false;
        for (auto it = range.first; it != range.second; ++it) {
            if (it->second == slot) {
                found = true;
                break;
            }
        }
        if (!found) {
            nodeError(result, bm,
                      "live token at slot " + std::to_string(slot) +
                          " missing from identity index");
        }
        for (std::size_t p = 0; p < bm->probes.size(); ++p) {
            const BetaProbe &probe = bm->probes[p];
            auto pr = probe.buckets.equal_range(
                tokenKeyHash(probe.spec, token));
            bool in_probe = false;
            for (auto b = pr.first; b != pr.second; ++b) {
                if (b->second == slot) {
                    in_probe = true;
                    break;
                }
            }
            if (!in_probe) {
                nodeError(result, bm,
                          "probe " + std::to_string(p) +
                              " bucket missing live token at slot " +
                              std::to_string(slot));
            }
        }
    });
}

void
checkNotIndexes(ValidationResult &result, const NotNode *nn)
{
    if (!nn->indexed()) {
        if (!nn->entry_index.empty()) {
            nodeError(result, nn,
                      "inactive entry index still holds " +
                          std::to_string(nn->entry_index.size()) +
                          " entries");
        }
        return;
    }
    if (nn->entry_index.size() != nn->entries.size()) {
        nodeError(result, nn,
                  "entry index holds " +
                      std::to_string(nn->entry_index.size()) +
                      " entries for " + std::to_string(nn->entries.size()) +
                      " left-match entries");
    }
    for (std::size_t i = 0; i < nn->entries.size(); ++i) {
        auto range =
            nn->entry_index.equal_range(nn->entries[i].token.hash());
        bool found = false;
        for (auto it = range.first; it != range.second; ++it) {
            if (it->second == i) {
                found = true;
                break;
            }
        }
        if (!found) {
            nodeError(result, nn,
                      "entry at slot " + std::to_string(i) +
                          " missing from entry index");
        }
    }
}

} // namespace

ValidationResult
validateStructure(const Network &network)
{
    return StructureValidator(network).run();
}

ValidationResult
validateIndexes(const Network &network)
{
    ValidationResult result;
    for (const auto &node : network.nodes()) {
        switch (node->kind) {
          case NodeKind::AlphaMemory:
            checkAlphaIndexes(
                result, static_cast<const AlphaMemoryNode *>(node.get()));
            break;
          case NodeKind::BetaMemory:
            checkBetaIndexes(
                result, static_cast<const BetaMemoryNode *>(node.get()));
            break;
          case NodeKind::Not:
            checkNotIndexes(result,
                            static_cast<const NotNode *>(node.get()));
            break;
          default:
            break;
        }
    }
    return result;
}

ValidationResult
validateNetworkState(const Network &network,
                     const std::vector<const ops5::Wme *> &live_wmes)
{
    ValidationResult result = Validator(network, live_wmes, nullptr).run();
    result.merge(validateIndexes(network));
    return result;
}

ValidationResult
validateMatcherState(const Network &network,
                     const std::vector<const ops5::Wme *> &live_wmes,
                     const ops5::ConflictSet &conflict_set)
{
    ValidationResult result = validateStructure(network);
    result.merge(Validator(network, live_wmes, &conflict_set).run());
    result.merge(validateIndexes(network));
    return result;
}

} // namespace psm::rete
