#include "rete/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace psm::rete {

namespace {

/** Ground-truth recomputation context. */
class Validator
{
  public:
    Validator(const Network &net,
              const std::vector<const ops5::Wme *> &live)
        : net_(net), live_(live)
    {
        // Map each two-input node's output memory back to it.
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::Join) {
                auto *j = static_cast<JoinNode *>(node.get());
                producer_[j->output->id] = j;
            } else if (node->kind == NodeKind::Not) {
                auto *n = static_cast<NotNode *>(node.get());
                producer_[n->output->id] = n;
            }
        }
    }

    ValidationResult
    run()
    {
        checkAlphaChains();
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::BetaMemory &&
                node.get() != net_.top()) {
                checkBetaMemory(
                    static_cast<const BetaMemoryNode *>(node.get()));
            }
            if (node->kind == NodeKind::Not)
                checkNotCounts(static_cast<const NotNode *>(node.get()));
        }
        return std::move(result_);
    }

  private:
    void
    error(const Node *node, const std::string &msg)
    {
        std::ostringstream os;
        os << nodeKindName(node->kind) << " node " << node->id << ": "
           << msg;
        result_.errors.push_back(os.str());
    }

    /** Compares pointer multisets, reporting the difference. */
    template <typename T>
    void
    compareSets(const Node *node, std::vector<T> actual,
                std::vector<T> expected, const char *what)
    {
        std::sort(actual.begin(), actual.end());
        std::sort(expected.begin(), expected.end());
        if (actual != expected) {
            std::ostringstream os;
            os << what << " mismatch: " << actual.size()
               << " stored vs " << expected.size() << " expected";
            error(node, os.str());
        }
    }

    // --- alpha network -------------------------------------------------

    void
    checkAlphaChains()
    {
        // Walk every class root chain, accumulating tests. Only
        // classes with live WMEs can have non-empty memories; chains
        // of other classes are covered by the emptiness check below.
        std::vector<const AlphaTest *> tests;
        std::map<ops5::SymbolId, std::vector<const ops5::Wme *>>
            by_class;
        for (const ops5::Wme *wme : live_)
            by_class[wme->className()].push_back(wme);

        checked_alpha_.clear();
        for (const auto &[cls, wmes] : by_class) {
            for (Node *head : net_.classRoots(cls))
                walkAlpha(head, wmes, tests);
        }
        // Alpha memories for classes with no live WMEs must be empty.
        for (const auto &node : net_.nodes()) {
            if (node->kind == NodeKind::AlphaMemory &&
                !checked_alpha_.count(node->id)) {
                auto *am =
                    static_cast<const AlphaMemoryNode *>(node.get());
                if (!am->items.empty())
                    error(am, "expected empty (no live WMEs of its "
                              "class)");
            }
        }
    }

    void
    walkAlpha(Node *node, const std::vector<const ops5::Wme *> &wmes,
              std::vector<const AlphaTest *> &tests)
    {
        if (node->kind == NodeKind::AlphaMemory) {
            auto *am = static_cast<AlphaMemoryNode *>(node);
            checked_alpha_.insert(am->id);
            std::vector<const ops5::Wme *> expected;
            for (const ops5::Wme *wme : wmes) {
                bool pass = std::all_of(
                    tests.begin(), tests.end(),
                    [&](const AlphaTest *t) {
                        return t->eval(*wme,
                                       net_.program().symbols());
                    });
                if (pass)
                    expected.push_back(wme);
            }
            compareSets(am, am->items, std::move(expected), "alpha");
            return;
        }
        auto *ct = static_cast<ConstTestNode *>(node);
        tests.push_back(&ct->test);
        for (Node *succ : ct->successors)
            walkAlpha(succ, wmes, tests);
        tests.pop_back();
    }

    // --- beta network --------------------------------------------------

    const std::vector<Token> &
    expectedTokens(const BetaMemoryNode *mem)
    {
        auto it = expected_.find(mem->id);
        if (it != expected_.end())
            return it->second;
        if (mem == net_.top()) {
            return expected_.emplace(mem->id, std::vector<Token>{Token{}})
                .first->second;
        }

        std::vector<Token> out;
        const Node *prod = producer_.at(mem->id);
        const ops5::SymbolTable &syms = net_.program().symbols();
        if (prod->kind == NodeKind::Join) {
            auto *join = static_cast<const JoinNode *>(prod);
            // Ground truth for the right input: recompute from live
            // WMEs via the alpha check (items were already verified);
            // use the verified memory contents directly.
            for (const Token &left : expectedTokens(join->left)) {
                for (const ops5::Wme *wme : join->right->items) {
                    if (evalJoinTests(join->tests, left, *wme, syms))
                        out.push_back(left.extend(wme));
                }
            }
        } else {
            auto *not_node = static_cast<const NotNode *>(prod);
            for (const Token &left : expectedTokens(not_node->left)) {
                bool blocked = std::any_of(
                    not_node->right->items.begin(),
                    not_node->right->items.end(),
                    [&](const ops5::Wme *wme) {
                        return evalJoinTests(not_node->tests, left,
                                             *wme, syms);
                    });
                if (!blocked)
                    out.push_back(left);
            }
        }
        return expected_.emplace(mem->id, std::move(out)).first->second;
    }

    void
    checkBetaMemory(const BetaMemoryNode *mem)
    {
        std::vector<std::string> actual, expect;
        for (const Token &t : mem->tokens)
            actual.push_back(tokenKey(t));
        for (const Token &t : expectedTokens(mem))
            expect.push_back(tokenKey(t));
        compareSets(mem, std::move(actual), std::move(expect), "beta");
        if (!mem->tombstones.empty())
            error(mem, "tombstones present outside a match phase");
    }

    void
    checkNotCounts(const NotNode *not_node)
    {
        const ops5::SymbolTable &syms = net_.program().symbols();
        // Entries must mirror the left memory's expected tokens with
        // correct blocker counts.
        std::vector<std::string> actual, expect;
        for (const NotNode::Entry &e : not_node->entries) {
            actual.push_back(tokenKey(e.token) + "#" +
                             std::to_string(e.count));
        }
        for (const Token &left : expectedTokens(not_node->left)) {
            int count = 0;
            for (const ops5::Wme *wme : not_node->right->items) {
                if (evalJoinTests(not_node->tests, left, *wme, syms))
                    ++count;
            }
            expect.push_back(tokenKey(left) + "#" +
                             std::to_string(count));
        }
        compareSets(not_node, std::move(actual), std::move(expect),
                    "not-entry");
    }

    static std::string
    tokenKey(const Token &t)
    {
        std::ostringstream os;
        for (const ops5::Wme *w : t.wmes)
            os << w->timeTag() << ",";
        return os.str();
    }

    const Network &net_;
    const std::vector<const ops5::Wme *> &live_;
    ValidationResult result_;
    std::unordered_map<int, const Node *> producer_;
    std::unordered_map<int, std::vector<Token>> expected_;
    std::set<int> checked_alpha_;
};

} // namespace

ValidationResult
validateNetworkState(const Network &network,
                     const std::vector<const ops5::Wme *> &live_wmes)
{
    return Validator(network, live_wmes).run();
}

} // namespace psm::rete
