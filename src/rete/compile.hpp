/**
 * @file
 * LHS compilation shared by every matcher.
 *
 * Turns each production's condition elements into (a) alpha tests a
 * WME can be checked against in isolation and (b) join tests that
 * need binding context from earlier condition elements. Both the
 * shared-network Rete builder and the TREAT matcher consume this,
 * so variable-binding semantics live in exactly one place.
 */

#ifndef PSM_RETE_COMPILE_HPP
#define PSM_RETE_COMPILE_HPP

#include <vector>

#include "ops5/production.hpp"
#include "rete/nodes.hpp"

namespace psm::rete {

/** One condition element lowered to alpha + join tests. */
struct CompiledCe
{
    ops5::SymbolId cls = ops5::kNilSymbol;
    bool negated = false;
    std::vector<AlphaTest> alpha_tests; ///< canonical (sorted) order
    std::vector<JoinTest> join_tests;   ///< vs earlier positive CEs
};

/** A production's whole LHS in lowered form. */
struct CompiledLhs
{
    const ops5::Production *production = nullptr;
    std::vector<CompiledCe> ces;
};

/**
 * Lowers @p production's LHS.
 *
 * Binding rules (OPS5): the first occurrence of a variable in a
 * positive CE binds it for later CEs; a variable first seen inside a
 * negated CE is local to that CE; repeated occurrences within one CE
 * become IntraField alpha tests; occurrences of variables bound by
 * earlier CEs become join tests against (positive ordinal, field).
 */
CompiledLhs compileLhs(const ops5::Production &production);

/**
 * Flattens @p tests into the branch-light SoA form two-input nodes
 * evaluate per probe (Network::finalizeIndexes calls this once per
 * node at build time).
 */
FlatTests flattenJoinTests(const std::vector<JoinTest> &tests);

/** The WME-side probe key an all-eq test vector implies. */
WmeKeySpec wmeKeySpecOf(const std::vector<JoinTest> &tests);

/** The token-side probe key an all-eq test vector implies. */
TokenKeySpec tokenKeySpecOf(const std::vector<JoinTest> &tests);

} // namespace psm::rete

#endif // PSM_RETE_COMPILE_HPP
