/**
 * @file
 * The Rete network: node storage, root dispatch, and the compiler
 * that builds the network from a Program with configurable node
 * sharing.
 *
 * Sharing matters to the paper twice over: the serial Rete exploits
 * it ("sharing evaluation of common tests amongst multiple
 * productions"), while the parallel implementation gives up memory /
 * two-input sharing — one of the three components of the lost factor
 * in Section 6. Building the same program with sharing on and off
 * quantifies that loss.
 */

#ifndef PSM_RETE_NETWORK_HPP
#define PSM_RETE_NETWORK_HPP

#include <memory>
#include <unordered_map>
#include <vector>

#include "ops5/production.hpp"
#include "rete/compile.hpp"
#include "rete/nodes.hpp"

namespace psm::telemetry {
class Registry;
}

namespace psm::rete {

/** Build-time options controlling node sharing. */
struct NetworkOptions
{
    /** Share constant-test chains between productions. Stateless, so
     *  even the parallel matcher keeps this on. */
    bool share_const_tests = true;

    /** Share alpha memories between productions. */
    bool share_alpha = true;

    /** Share two-input nodes (and their output memories) between
     *  productions with a common CE prefix. */
    bool share_two_input = true;

    static NetworkOptions
    fullSharing()
    {
        return {};
    }

    /** The parallel configuration: private state per production. */
    static NetworkOptions
    privateState()
    {
        NetworkOptions o;
        o.share_alpha = false;
        o.share_two_input = false;
        return o;
    }
};

/** Counts of created vs shared nodes, for the sharing-factor report. */
struct BuildStats
{
    int const_tests = 0;
    int alpha_memories = 0;
    int joins = 0;
    int nots = 0;
    int beta_memories = 0;
    int terminals = 0;
    int reused_const_tests = 0;
    int reused_alpha_memories = 0;
    int reused_two_input = 0;

    int
    total() const
    {
        return const_tests + alpha_memories + joins + nots +
               beta_memories + terminals;
    }
};

/**
 * A compiled Rete network over one Program.
 *
 * The network is immutable in structure after construction; only the
 * memory-node contents change during match. It can therefore back any
 * number of sequential runs, and (when built with privateState
 * options) the fine-grain parallel matcher.
 */
class Network
{
  public:
    Network(std::shared_ptr<const ops5::Program> program,
            NetworkOptions options = {});

    const ops5::Program &program() const { return *program_; }
    const NetworkOptions &options() const { return options_; }
    const BuildStats &buildStats() const { return build_stats_; }

    /** All nodes; index == Node::id. */
    const std::vector<std::unique_ptr<Node>> &nodes() const
    {
        return nodes_;
    }

    /** Alpha-chain heads for a WME class (empty when untested). */
    const std::vector<Node *> &classRoots(ops5::SymbolId cls) const;

    /** Dummy top beta memory holding the single empty token. */
    BetaMemoryNode *top() const { return top_; }

    const std::vector<TerminalNode *> &terminals() const
    {
        return terminals_;
    }

    /** Production ids using node @p node_id (sorted, deduplicated). */
    const std::vector<int> &productionsOf(int node_id) const
    {
        return node_productions_.at(node_id);
    }

    /** Drops all match state (memories, counts, tombstones). */
    void resetState();

    /**
     * Rebuilds every memory-node hash index from the raw contents
     * (items / token store / not entries). State restore fills the
     * raw containers directly and then calls this.
     */
    void rebuildIndexes();

  private:
    /**
     * Build-time index compilation: flattens each two-input node's
     * join tests into FlatTests and, for all-equality tests,
     * registers probe indexes (deduplicated by key spec) on the
     * node's input memories.
     */
    void finalizeIndexes();

    friend class NetworkBuilder;

    std::shared_ptr<const ops5::Program> program_;
    NetworkOptions options_;
    BuildStats build_stats_;

    std::vector<std::unique_ptr<Node>> nodes_;
    std::unordered_map<ops5::SymbolId, std::vector<Node *>> class_roots_;
    BetaMemoryNode *top_ = nullptr;
    std::vector<TerminalNode *> terminals_;
    std::vector<std::vector<int>> node_productions_;
};

/**
 * Sizes @p reg's per-node slots for @p network and installs the
 * node-to-production map the affected-production epochs use: stateful
 * nodes (memories, two-input, terminals) owned by exactly one
 * production map to it; constant tests and shared nodes map to -1.
 */
void configureTelemetryNodes(telemetry::Registry &reg,
                             const Network &network);

} // namespace psm::rete

#endif // PSM_RETE_NETWORK_HPP
