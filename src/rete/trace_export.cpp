#include "rete/trace_export.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace psm::rete {

std::uint64_t
spanClockNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

SpanRecorder::SpanRecorder(std::size_t n_workers)
    : lanes_(n_workers ? n_workers : 1)
{}

void
SpanRecorder::beginCycle(std::uint32_t cycle)
{
    if (cycle_open_)
        endCycle();
    open_cycle_ = RealSpan{};
    open_cycle_.cycle = cycle;
    open_cycle_.start_ns = spanClockNanos();
    cycle_open_ = true;
}

void
SpanRecorder::endCycle()
{
    if (!cycle_open_)
        return;
    open_cycle_.end_ns = spanClockNanos();
    cycle_spans_.push_back(open_cycle_);
    cycle_open_ = false;
}

void
SpanRecorder::clear()
{
    for (Lane &lane : lanes_)
        lane.spans.clear();
    cycle_spans_.clear();
    cycle_open_ = false;
}

namespace {

void
writeEvent(std::ostream &os, const ChromeEvent &ev, bool first)
{
    if (!first)
        os << ",\n";
    // Names are generated (node kinds + ids) — they never need
    // escaping, but keep the writer honest about quotes anyway.
    os << "{\"name\": \"";
    for (char c : ev.name) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    char buf[64];
    os << "\", \"cat\": \"" << ev.cat << "\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof buf, "%.3f", ev.ts_us);
    os << ", \"ts\": " << buf;
    std::snprintf(buf, sizeof buf, "%.3f", ev.dur_us);
    os << ", \"dur\": " << buf;
    os << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
    if (!ev.args_json.empty())
        os << ", \"args\": " << ev.args_json;
    os << "}";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<ChromeEvent> &events)
{
    // The bare-array form is valid for both Perfetto and
    // chrome://tracing and keeps concatenation-friendly output.
    os << "[\n";
    bool first = true;
    for (const ChromeEvent &ev : events) {
        writeEvent(os, ev, first);
        first = false;
    }
    os << "\n]\n";
}

bool
saveChromeTrace(const std::string &path,
                const std::vector<ChromeEvent> &events)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out, events);
    return out.good();
}

std::vector<ChromeEvent>
chromeEventsFromReal(const SpanRecorder &rec, int pid)
{
    std::vector<ChromeEvent> events;

    // Zero the time axis at the first recorded nanosecond so the
    // viewer opens at t=0 instead of hours of steady-clock uptime.
    std::uint64_t t0 = UINT64_MAX;
    for (const RealSpan &s : rec.cycleSpans())
        t0 = std::min(t0, s.start_ns);
    for (std::size_t w = 0; w < rec.workers(); ++w)
        for (const RealSpan &s : rec.spans(w))
            t0 = std::min(t0, s.start_ns);
    if (t0 == UINT64_MAX)
        return events;

    auto us = [t0](std::uint64_t ns) {
        return static_cast<double>(ns - t0) / 1e3;
    };

    // Cycle spans on tid 0; worker lanes on tid 1..N.
    for (const RealSpan &s : rec.cycleSpans()) {
        ChromeEvent ev;
        ev.name = "cycle " + std::to_string(s.cycle);
        ev.cat = "cycle";
        ev.pid = pid;
        ev.tid = 0;
        ev.ts_us = us(s.start_ns);
        ev.dur_us = us(s.end_ns) - us(s.start_ns);
        ev.args_json = "{\"cycle\": " + std::to_string(s.cycle) + "}";
        events.push_back(std::move(ev));
    }
    for (std::size_t w = 0; w < rec.workers(); ++w) {
        for (const RealSpan &s : rec.spans(w)) {
            ChromeEvent ev;
            ev.name = std::string(nodeKindName(s.kind)) + "#" +
                      std::to_string(s.node_id);
            ev.cat = "task";
            ev.pid = pid;
            ev.tid = static_cast<int>(w) + 1;
            ev.ts_us = us(s.start_ns);
            ev.dur_us = us(s.end_ns) - us(s.start_ns);
            ev.args_json =
                "{\"cycle\": " + std::to_string(s.cycle) +
                ", \"insert\": " + (s.insert ? "true" : "false") + "}";
            events.push_back(std::move(ev));
        }
    }
    return events;
}

} // namespace psm::rete
