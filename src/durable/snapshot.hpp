/**
 * @file
 * Working-memory snapshots: a versioned, CRC-protected image of one
 * engine's durable state, with two restore paths.
 *
 * A snapshot always carries enough to *replay-restore* into any
 * matcher configuration: the symbol table, every live WME with its
 * original time tag, the refraction (fired-instantiation) keys, and
 * the engine counters. Re-asserting the WMEs through the matcher as
 * one change batch rebuilds the conflict set, because at a cycle
 * barrier the conflict set is a pure function of working memory.
 *
 * When the engine runs the serial Rete matcher the snapshot can also
 * carry the match state itself — alpha-memory items, beta-memory
 * tokens, and not-node counts, referenced by time tag — enabling
 * *state restore*: working memory is reloaded without re-running the
 * match, which is the paper's state-saving economics (Section 3)
 * applied to recovery. State restores always pass shape validation
 * (rete::validateStructure plus per-token bounds checks during the
 * fill); full semantic validation (rete::validateMatcherState, which
 * re-derives every memory from scratch and therefore costs more than
 * the replay it guards against) is opt-in via RestoreValidation.
 */

#ifndef PSM_DURABLE_SNAPSHOT_HPP
#define PSM_DURABLE_SNAPSHOT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "durable/format.hpp"
#include "ops5/conflict.hpp"

namespace psm::rete {
class ReteMatcher;
}

namespace psm::durable {

/** Identity hash of a Program; snapshots and WALs refuse to restore
 *  into a different rule base. */
std::uint64_t programFingerprint(const ops5::Program &program);

/** One serialized WME. */
struct SnapshotWme
{
    ops5::TimeTag tag = 0;
    ops5::SymbolId cls = 0;
    std::vector<ops5::Value> fields;
};

/** Serialized contents of one stateful Rete node. */
struct ReteNodeState
{
    std::int32_t node_id = -1;
    std::uint8_t kind = 0; ///< 0 alpha memory, 1 beta memory, 2 not
    /** Alpha memories: item WMEs by time tag. */
    std::vector<ops5::TimeTag> items;
    /** Beta memories / not nodes: tokens as tag vectors. */
    std::vector<std::vector<ops5::TimeTag>> tokens;
    /** Not nodes: per-entry right-match counts (parallel to tokens). */
    std::vector<std::int32_t> counts;
};

/** Optional serial-Rete match-state section. */
struct ReteState
{
    bool present = false;
    std::vector<ReteNodeState> nodes;
    /** Live conflict-set instantiation keys at capture. */
    std::vector<ops5::InstantiationKey> live;
};

/** In-memory form of one snapshot. */
struct SnapshotData
{
    std::uint64_t fingerprint = 0;
    core::RunResult totals;
    std::uint64_t batch_seq = 0;
    bool halted = false;
    ops5::TimeTag next_tag = 1;
    std::vector<std::string> symbols; ///< full table, id order
    std::vector<SnapshotWme> wmes;    ///< live WMEs, tag order
    std::vector<ops5::InstantiationKey> fired; ///< refraction keys
    ReteState rete;
};

/**
 * Captures the engine's durable state. Must run at a cycle barrier
 * (never mid-batch). When the engine's matcher is the serial Rete
 * matcher the Rete match-state section is captured too.
 */
SnapshotData captureSnapshot(core::Engine &engine);

/** Encodes to the versioned binary format (trailing CRC32). */
std::vector<std::uint8_t> encodeSnapshot(const SnapshotData &snap);

/** Decodes and CRC-checks; DurableError on any corruption. */
SnapshotData decodeSnapshot(std::span<const std::uint8_t> bytes);

/** writeFileAtomic(encodeSnapshot(snap)). */
void writeSnapshotFile(const std::string &path, const SnapshotData &snap);

/** readFileAll + decodeSnapshot. */
SnapshotData readSnapshotFile(const std::string &path);

/**
 * Replay restore: re-asserts every snapshotted WME (original time
 * tags) through the engine's matcher as one batch, re-marks the
 * refraction keys, and restores the engine counters. Works with any
 * matcher configuration. The engine must be freshly constructed
 * (empty WM, batch sequence 0).
 */
void replayRestore(core::Engine &engine, const SnapshotData &snap);

/** How hard a state restore double-checks the restored match state. */
enum class RestoreValidation : std::uint8_t
{
    /** Shape-only: rete::validateStructure plus the fill's own node
     *  id/kind/time-tag bounds checks. The snapshot's whole-image CRC
     *  already rules out corruption, and the state was captured from
     *  a live engine at a cycle barrier, so this is the production
     *  default — it keeps state restore cheaper than replay. */
    Structure,
    /** Everything above plus rete::validateMatcherState, which
     *  re-derives every memory's expected contents from working
     *  memory — stronger than replay, and costlier; for tests and
     *  debugging. */
    Full,
};

/**
 * State restore: reloads working memory WITHOUT re-running the match,
 * filling the Rete memory nodes and the conflict set directly from
 * the snapshot's match-state section, then validates the result at
 * the requested level. Requires @p snap.rete.present and an engine
 * driving @p matcher. DurableError when validation fails.
 */
void stateRestore(core::Engine &engine, rete::ReteMatcher &matcher,
                  const SnapshotData &snap,
                  RestoreValidation validation = RestoreValidation::Full);

/**
 * Restores @p snap into @p engine by the cheapest correct path:
 * state restore when the snapshot carries match state and the
 * engine's matcher is the serial Rete matcher with the snapshot's
 * node layout, replay restore otherwise. @return true when the state
 * path was used.
 */
bool restoreSnapshot(
    core::Engine &engine, const SnapshotData &snap,
    RestoreValidation validation = RestoreValidation::Structure);

} // namespace psm::durable

#endif // PSM_DURABLE_SNAPSHOT_HPP
