/**
 * @file
 * The durability manager: attaches a write-ahead log and a checkpoint
 * policy to one Engine, and recovers a crashed session from disk.
 *
 * On-disk layout of one session directory:
 *
 *     <dir>/wal.plog          the write-ahead log
 *     <dir>/snap-<seq>.psnap  snapshots, named by batch sequence
 *
 * The recovery invariant: after recover(), the engine's working
 * memory, conflict set (including refraction), counters, and time-tag
 * counter are byte-identical to the crashed process at its last
 * intact WAL record — the newest parseable snapshot is restored
 * (state restore when it carries Rete match state and the engine runs
 * the serial Rete matcher; replay restore otherwise) and the WAL tail
 * with sequence numbers past the snapshot is re-executed through
 * Engine::applyLoggedBatch. A torn or corrupt WAL tail is cut at the
 * first bad frame; a sequence gap between snapshot and WAL throws.
 */

#ifndef PSM_DURABLE_MANAGER_HPP
#define PSM_DURABLE_MANAGER_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/telemetry.hpp"
#include "durable/snapshot.hpp"
#include "durable/wal.hpp"

namespace psm::durable {

/**
 * Receiver of the durable byte stream, for WAL shipping: every
 * committed WAL frame and every checkpoint is offered to the sink
 * right after it is locally durable, in commit order. Callbacks run
 * on the thread that committed the batch (the session's server
 * thread), so implementations should hand off or keep the work
 * bounded. A throwing sink would poison the commit path; sinks must
 * swallow their own transport errors (a lagging or dead standby
 * never makes the primary fail).
 */
class WalShipSink
{
  public:
    virtual ~WalShipSink() = default;

    /** One committed WAL frame (frameRecord() bytes, CRC intact). */
    virtual void onWalFrame(std::uint64_t seq,
                            std::span<const std::uint8_t> frame) = 0;

    /** A checkpoint completed: @p snapshot_path is durable on disk
     *  and the local WAL was reset — the replica should install the
     *  snapshot and reset its log the same way. */
    virtual void onCheckpoint(std::uint64_t seq,
                              const std::string &snapshot_path) = 0;
};

/** When to cut a snapshot (and truncate the WAL behind it). */
struct CheckpointPolicy
{
    /** Snapshot every N committed batches; 0 disables the trigger. */
    std::uint64_t every_batches = 0;
    /** Snapshot when this much wall time passed since the last one;
     *  zero disables the trigger. Checked at batch commits. */
    std::chrono::milliseconds every{0};
    /** Snapshot when the owning session/pool drains. */
    bool on_drain = true;
};

/** Configuration of one durable session. */
struct DurableOptions
{
    /** Session state directory; empty disables durability. */
    std::string dir;
    FsyncPolicy fsync = FsyncPolicy::Batch;
    CheckpointPolicy checkpoint{};
    /** Snapshots retained on disk; older ones are pruned after each
     *  checkpoint (the newest is the restore source, the rest are
     *  fallbacks against a corrupt newest). */
    std::size_t keep_snapshots = 2;

    /** WAL-shipping sink (not owned; may be null). See WalShipSink. */
    WalShipSink *ship = nullptr;

    bool enabled() const { return !dir.empty(); }
};

/** What recover() found and did. */
struct RecoveryStats
{
    bool recovered = false;      ///< any durable state was loaded
    bool state_restored = false; ///< Rete state path (vs replay)
    std::uint64_t snapshot_seq = 0;       ///< 0 when WAL-only
    std::uint64_t wal_records_replayed = 0;
    bool wal_truncated = false;  ///< a torn/corrupt tail was cut
    std::string wal_truncation_reason;
    double recovery_ms = 0.0;
};

/**
 * Durability for one Engine. Lifecycle:
 *
 *     Manager m(engine, options);
 *     auto stats = m.recover();      // optional: warm start
 *     m.begin();                     // attach WAL observer
 *     if (!stats.recovered)
 *         engine.loadInitialWorkingMemory();
 *     ... run ...
 *     m.checkpoint();                // e.g. at drain
 *
 * Not thread safe; the serving layer serializes all engine access per
 * session, and the manager rides on that.
 */
class Manager
{
  public:
    /**
     * @param engine  engine to make durable (not owned)
     * @param options must have enabled() == true
     * @param metrics optional registry; durable counters/histograms
     *                land in shard 0 (multi-writer safe)
     */
    Manager(core::Engine &engine, DurableOptions options,
            telemetry::Registry *metrics = nullptr);

    /** Detaches the batch observer. */
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    /** True when @p dir holds restorable state (a WAL or snapshot). */
    static bool hasState(const std::string &dir);

    /** All snapshot files in @p dir as (seq, path), newest first —
     *  the shipping resync path reads the head of this list. */
    static std::vector<std::pair<std::uint64_t, std::string>>
    snapshots(const std::string &dir);

    /**
     * Restores the engine from the directory. Must run before begin()
     * on a freshly constructed engine. A directory with no durable
     * state recovers to nothing (stats.recovered == false) and the
     * caller loads initial working memory as usual. Throws
     * DurableError when state exists but cannot be restored
     * correctly.
     */
    RecoveryStats recover();

    /**
     * Opens the WAL for append (truncating any torn tail) and
     * attaches the batch observer; every batch the engine commits
     * from here on is logged. Throws DurableError when the directory
     * already holds state and recover() was not called — appending a
     * second history onto an unrecovered log would corrupt it.
     */
    void begin();

    /** Writes a snapshot (atomic rename), truncates the WAL, prunes
     *  old snapshots. Callable at any cycle barrier. */
    void checkpoint();

    /** Fsyncs the WAL now (Batch policy's flush point). */
    void sync();

    const RecoveryStats &lastRecovery() const { return recovery_; }
    const DurableOptions &options() const { return options_; }
    std::uint64_t walRecords() const
    {
        return wal_ ? wal_->recordsAppended() : 0;
    }
    std::uint64_t snapshotsWritten() const { return snapshots_written_; }

  private:
    void onBatch(const core::BatchCommit &commit);
    void maybeCheckpoint();
    std::string walPath() const;
    std::string snapshotPath(std::uint64_t seq) const;

    core::Engine &engine_;
    DurableOptions options_;
    telemetry::Registry *metrics_;
    std::uint64_t fingerprint_;
    std::unique_ptr<WalWriter> wal_;
    RecoveryStats recovery_;
    bool recover_ran_ = false;
    bool began_ = false;
    std::uint64_t wal_valid_bytes_ = 0;
    bool wal_scanned_ = false;
    std::uint64_t batches_since_checkpoint_ = 0;
    std::chrono::steady_clock::time_point last_checkpoint_;
    std::uint64_t snapshots_written_ = 0;
};

} // namespace psm::durable

#endif // PSM_DURABLE_MANAGER_HPP
