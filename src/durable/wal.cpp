#include "durable/wal.hpp"

#include <cerrno>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace psm::durable {

namespace {

constexpr std::uint64_t kWalMagic = 0x50534D57414C3031ULL; // PSMWAL01
constexpr std::uint32_t kWalVersion = 1;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
/** Sanity cap on one record so a garbage length field cannot force a
 *  multi-gigabyte allocation during recovery. */
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

[[noreturn]] void
ioError(const std::string &path, const std::string &op)
{
    throw DurableError(op + " failed for " + path + ": " +
                       std::strerror(errno));
}

std::vector<std::uint8_t>
encodeHeader(std::uint64_t fingerprint)
{
    ByteWriter w;
    w.u64(kWalMagic);
    w.u32(kWalVersion);
    w.u32(0); // reserved
    w.u64(fingerprint);
    return w.take();
}

} // namespace

const char *
fsyncPolicyName(FsyncPolicy p)
{
    switch (p) {
      case FsyncPolicy::None: return "none";
      case FsyncPolicy::Batch: return "batch";
      case FsyncPolicy::Always: return "always";
    }
    return "unknown";
}

bool
parseFsyncPolicy(const std::string &text, FsyncPolicy &out)
{
    if (text == "none")
        out = FsyncPolicy::None;
    else if (text == "batch")
        out = FsyncPolicy::Batch;
    else if (text == "always")
        out = FsyncPolicy::Always;
    else
        return false;
    return true;
}

std::vector<std::uint8_t>
encodeBatch(const core::LoggedBatch &batch)
{
    ByteWriter w;
    w.u64(batch.seq);
    w.u8(static_cast<std::uint8_t>(batch.origin));
    w.u8(batch.halted ? 1 : 0);
    w.u64(batch.cycles_after);
    w.u64(batch.wme_changes_after);
    w.u64(batch.next_tag_after);

    w.u8(batch.has_fired ? 1 : 0);
    if (batch.has_fired) {
        w.u32(static_cast<std::uint32_t>(batch.fired_production));
        w.u32(static_cast<std::uint32_t>(batch.fired_tags.size()));
        for (ops5::TimeTag t : batch.fired_tags)
            w.u64(t);
    }

    w.u32(static_cast<std::uint32_t>(batch.changes.size()));
    for (const core::LoggedBatch::Change &c : batch.changes) {
        w.u8(static_cast<std::uint8_t>(c.kind));
        w.u64(c.tag);
        w.u32(c.cls);
        if (c.kind == ops5::ChangeKind::Insert) {
            w.u32(static_cast<std::uint32_t>(c.fields.size()));
            for (const ops5::Value &v : c.fields)
                w.value(v);
        }
    }
    return w.take();
}

core::LoggedBatch
decodeBatch(std::span<const std::uint8_t> payload)
{
    ByteReader r(payload);
    core::LoggedBatch batch;
    batch.seq = r.u64();
    std::uint8_t origin = r.u8();
    if (origin > 2)
        throw DurableError("bad batch-origin byte");
    batch.origin = static_cast<core::BatchOrigin>(origin);
    batch.halted = r.u8() != 0;
    batch.cycles_after = r.u64();
    batch.wme_changes_after = r.u64();
    batch.next_tag_after = r.u64();

    batch.has_fired = r.u8() != 0;
    if (batch.has_fired) {
        batch.fired_production = static_cast<int>(r.u32());
        std::uint32_t n = r.u32();
        batch.fired_tags.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            batch.fired_tags.push_back(r.u64());
    }

    std::uint32_t n_changes = r.u32();
    batch.changes.reserve(n_changes);
    for (std::uint32_t i = 0; i < n_changes; ++i) {
        core::LoggedBatch::Change c;
        std::uint8_t kind = r.u8();
        if (kind > 1)
            throw DurableError("bad change-kind byte");
        c.kind = static_cast<ops5::ChangeKind>(kind);
        c.tag = r.u64();
        c.cls = static_cast<ops5::SymbolId>(r.u32());
        if (c.kind == ops5::ChangeKind::Insert) {
            std::uint32_t nf = r.u32();
            c.fields.reserve(nf);
            for (std::uint32_t f = 0; f < nf; ++f)
                c.fields.push_back(r.value());
        }
        batch.changes.push_back(std::move(c));
    }
    if (!r.atEnd())
        throw DurableError("WAL record has trailing bytes");
    return batch;
}

std::vector<std::uint8_t>
frameRecord(const core::LoggedBatch &batch)
{
    std::vector<std::uint8_t> payload = encodeBatch(batch);
    ByteWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u32(crc32(payload));
    std::vector<std::uint8_t> out = frame.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

WalWriter::WalWriter(std::string path, FsyncPolicy policy,
                     std::uint64_t fingerprint)
    : path_(std::move(path)), policy_(policy), fingerprint_(fingerprint)
{
    fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd_ < 0)
        ioError(path_, "open");
    struct stat st{};
    if (::fstat(fd_, &st) != 0)
        ioError(path_, "fstat");
    if (st.st_size == 0)
        writeHeader();
    else if (static_cast<std::size_t>(st.st_size) < kHeaderBytes)
        throw DurableError(path_ +
                           ": existing WAL is shorter than its header "
                           "(run recovery first)");
}

WalWriter::~WalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
WalWriter::writeRaw(const std::uint8_t *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd_, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioError(path_, "write");
        }
        off += static_cast<std::size_t>(n);
    }
}

void
WalWriter::writeHeader()
{
    std::vector<std::uint8_t> header = encodeHeader(fingerprint_);
    writeRaw(header.data(), header.size());
    if (policy_ != FsyncPolicy::None)
        sync();
}

void
WalWriter::append(const core::LoggedBatch &batch)
{
    appendRawFrame(frameRecord(batch));
}

void
WalWriter::appendRawFrame(std::span<const std::uint8_t> frame)
{
    if (frame.size() < 8)
        throw DurableError(path_ + ": raw frame shorter than its header");
    ByteReader header(frame.subspan(0, 8));
    std::uint32_t length = header.u32();
    std::uint32_t stored_crc = header.u32();
    if (length > kMaxRecordBytes || frame.size() - 8 != length)
        throw DurableError(path_ + ": raw frame length field disagrees "
                                   "with the frame size");
    if (crc32(frame.subspan(8)) != stored_crc)
        throw DurableError(path_ + ": raw frame CRC mismatch");
    writeRaw(frame.data(), frame.size());
    ++records_;
    payload_bytes_ += length;
    if (policy_ == FsyncPolicy::Always)
        sync();
}

void
WalWriter::sync()
{
    if (policy_ == FsyncPolicy::None)
        return;
    if (::fsync(fd_) != 0)
        ioError(path_, "fsync");
}

void
WalWriter::reset()
{
    if (::ftruncate(fd_, 0) != 0)
        ioError(path_, "ftruncate");
    writeHeader();
}

WalReadResult
readWal(const std::string &path, std::uint64_t expect_fingerprint)
{
    WalReadResult result;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        if (errno == ENOENT)
            return result; // no log yet: valid empty
        ioError(path, "stat");
    }
    std::vector<std::uint8_t> bytes = readFileAll(path);
    if (bytes.empty())
        return result;
    if (bytes.size() < kHeaderBytes)
        throw DurableError(path + ": WAL shorter than its header");

    ByteReader header(
        std::span<const std::uint8_t>(bytes.data(), kHeaderBytes));
    if (header.u64() != kWalMagic)
        throw DurableError(path + ": not a WAL file (bad magic)");
    std::uint32_t version = header.u32();
    if (version != kWalVersion)
        throw DurableError(path + ": unsupported WAL version " +
                           std::to_string(version));
    header.u32(); // reserved
    if (header.u64() != expect_fingerprint)
        throw DurableError(
            path + ": WAL belongs to a different program "
                   "(fingerprint mismatch)");

    std::size_t pos = kHeaderBytes;
    result.valid_bytes = pos;
    while (pos < bytes.size()) {
        auto torn = [&](const std::string &why) {
            result.truncated = true;
            result.truncation_reason = why;
        };
        if (bytes.size() - pos < 8) {
            torn("torn frame header at offset " + std::to_string(pos));
            break;
        }
        ByteReader frame(std::span<const std::uint8_t>(
            bytes.data() + pos, 8));
        std::uint32_t length = frame.u32();
        std::uint32_t stored_crc = frame.u32();
        if (length > kMaxRecordBytes) {
            torn("implausible record length at offset " +
                 std::to_string(pos));
            break;
        }
        if (bytes.size() - pos - 8 < length) {
            torn("torn record payload at offset " + std::to_string(pos));
            break;
        }
        std::span<const std::uint8_t> payload(bytes.data() + pos + 8,
                                              length);
        if (crc32(payload) != stored_crc) {
            torn("CRC mismatch at offset " + std::to_string(pos));
            break;
        }
        core::LoggedBatch batch;
        try {
            batch = decodeBatch(payload);
        } catch (const DurableError &e) {
            torn("undecodable record at offset " + std::to_string(pos) +
                 ": " + e.what());
            break;
        }
        result.records.push_back(std::move(batch));
        pos += 8 + length;
        result.valid_bytes = pos;
    }
    return result;
}

std::vector<WalFrame>
readWalFramesSince(const std::string &path,
                   std::uint64_t expect_fingerprint,
                   std::uint64_t after_seq)
{
    std::vector<WalFrame> out;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        if (errno == ENOENT)
            return out;
        ioError(path, "stat");
    }
    std::vector<std::uint8_t> bytes = readFileAll(path);
    if (bytes.empty())
        return out;
    if (bytes.size() < kHeaderBytes)
        throw DurableError(path + ": WAL shorter than its header");
    ByteReader header(
        std::span<const std::uint8_t>(bytes.data(), kHeaderBytes));
    if (header.u64() != kWalMagic)
        throw DurableError(path + ": not a WAL file (bad magic)");
    if (header.u32() != kWalVersion)
        throw DurableError(path + ": unsupported WAL version");
    header.u32(); // reserved
    if (header.u64() != expect_fingerprint)
        throw DurableError(path + ": WAL belongs to a different program "
                                  "(fingerprint mismatch)");

    std::size_t pos = kHeaderBytes;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < 8)
            break; // torn frame header: the growing/cut tail
        ByteReader frame(
            std::span<const std::uint8_t>(bytes.data() + pos, 8));
        std::uint32_t length = frame.u32();
        std::uint32_t stored_crc = frame.u32();
        if (length > kMaxRecordBytes ||
            bytes.size() - pos - 8 < length)
            break;
        std::span<const std::uint8_t> payload(bytes.data() + pos + 8,
                                              length);
        if (crc32(payload) != stored_crc)
            break;
        core::LoggedBatch batch;
        try {
            batch = decodeBatch(payload);
        } catch (const DurableError &) {
            break;
        }
        if (batch.seq > after_seq) {
            WalFrame f;
            f.seq = batch.seq;
            f.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                           bytes.begin() +
                               static_cast<std::ptrdiff_t>(pos + 8 + length));
            out.push_back(std::move(f));
        }
        pos += 8 + length;
    }
    return out;
}

void
truncateWal(const std::string &path, std::uint64_t valid_bytes)
{
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0)
        ioError(path, "truncate");
    int fd = ::open(path.c_str(), O_WRONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace psm::durable
