#include "durable/snapshot.hpp"

#include <algorithm>

#include "rete/matcher.hpp"
#include "rete/network.hpp"
#include "rete/nodes.hpp"
#include "rete/validate.hpp"

namespace psm::durable {

namespace {

constexpr std::uint64_t kSnapshotMagic = 0x50534D534E415031ULL; // PSMSNAP1
constexpr std::uint32_t kSnapshotVersion = 1;

constexpr std::uint8_t kNodeAlpha = 0;
constexpr std::uint8_t kNodeBeta = 1;
constexpr std::uint8_t kNodeNot = 2;

void
writeKey(ByteWriter &w, const ops5::InstantiationKey &key)
{
    w.u32(static_cast<std::uint32_t>(key.production_id));
    w.u32(static_cast<std::uint32_t>(key.tags.size()));
    for (ops5::TimeTag t : key.tags)
        w.u64(t);
}

ops5::InstantiationKey
readKey(ByteReader &r)
{
    ops5::InstantiationKey key;
    key.production_id = static_cast<int>(r.u32());
    std::uint32_t n = r.u32();
    key.tags.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        key.tags.push_back(r.u64());
    return key;
}

void
writeToken(ByteWriter &w, const std::vector<ops5::TimeTag> &tags)
{
    w.u32(static_cast<std::uint32_t>(tags.size()));
    for (ops5::TimeTag t : tags)
        w.u64(t);
}

std::vector<ops5::TimeTag>
readToken(ByteReader &r)
{
    std::uint32_t n = r.u32();
    std::vector<ops5::TimeTag> tags;
    tags.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        tags.push_back(r.u64());
    return tags;
}

std::vector<ops5::TimeTag>
tokenTags(const rete::Token &token)
{
    std::vector<ops5::TimeTag> tags;
    tags.reserve(token.size());
    for (const ops5::Wme *wme : token)
        tags.push_back(wme->timeTag());
    return tags;
}

/** Captures the serial-Rete match state; @pre no parked tombstones. */
ReteState
captureReteState(rete::ReteMatcher &matcher)
{
    if (matcher.pendingTombstones() != 0 ||
        matcher.conflictSet().pendingTombstones() != 0)
        throw DurableError(
            "cannot snapshot mid-batch: tombstones are parked");

    ReteState state;
    state.present = true;
    for (const auto &node : matcher.network().nodes()) {
        ReteNodeState ns;
        ns.node_id = node->id;
        switch (node->kind) {
          case rete::NodeKind::AlphaMemory: {
            auto *am = static_cast<rete::AlphaMemoryNode *>(node.get());
            ns.kind = kNodeAlpha;
            for (const ops5::Wme *wme : am->items)
                ns.items.push_back(wme->timeTag());
            break;
          }
          case rete::NodeKind::BetaMemory: {
            auto *bm = static_cast<rete::BetaMemoryNode *>(node.get());
            ns.kind = kNodeBeta;
            bm->store.forEach([&](const rete::Token &token) {
                ns.tokens.push_back(tokenTags(token));
            });
            break;
          }
          case rete::NodeKind::Not: {
            auto *nn = static_cast<rete::NotNode *>(node.get());
            ns.kind = kNodeNot;
            for (const rete::NotNode::Entry &entry : nn->entries) {
                ns.tokens.push_back(tokenTags(entry.token));
                ns.counts.push_back(entry.count);
            }
            break;
          }
          default:
            continue; // stateless node kinds
        }
        state.nodes.push_back(std::move(ns));
    }
    for (const ops5::Instantiation &inst :
         matcher.conflictSet().contents())
        state.live.push_back(ops5::InstantiationKey::of(inst));
    return state;
}

/** Shared preconditions of both restore paths. */
void
checkRestorable(core::Engine &engine, const SnapshotData &snap)
{
    std::uint64_t fp = programFingerprint(engine.program());
    if (snap.fingerprint != fp)
        throw DurableError(
            "snapshot belongs to a different program (fingerprint "
            "mismatch)");
    if (engine.batchSeq() != 0 ||
        engine.workingMemory().liveCount() != 0)
        throw DurableError(
            "restore requires a freshly constructed engine");
    const ops5::SymbolTable &syms = engine.program().symbols();
    if (snap.symbols.size() > syms.size())
        throw DurableError(
            "snapshot references symbols the program never interned");
    for (std::size_t i = 0; i < snap.symbols.size(); ++i) {
        if (syms.name(static_cast<ops5::SymbolId>(i)) !=
            snap.symbols[i])
            throw DurableError("symbol table mismatch at id " +
                               std::to_string(i) + ": program has '" +
                               syms.name(static_cast<ops5::SymbolId>(i)) +
                               "', snapshot has '" + snap.symbols[i] +
                               "'");
    }
}

/** Inserts every snapshotted WME under its original time tag. */
std::vector<ops5::WmeChange>
loadWmes(core::Engine &engine, const SnapshotData &snap)
{
    ops5::WorkingMemory &wm = engine.workingMemory();
    std::vector<ops5::WmeChange> changes;
    changes.reserve(snap.wmes.size());
    for (const SnapshotWme &sw : snap.wmes) {
        const ops5::Wme *wme = wm.insertWithTag(sw.cls, sw.tag, sw.fields);
        changes.push_back({ops5::ChangeKind::Insert, wme});
    }
    wm.setNextTag(snap.next_tag);
    return changes;
}

} // namespace

std::uint64_t
programFingerprint(const ops5::Program &program)
{
    // FNV-1a over the production roster; identical source parses to an
    // identical fingerprint, and any rule change invalidates old state.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001b3ULL;
        }
    };
    auto mixStr = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
    };
    mix(program.productions().size());
    for (const auto &prod : program.productions()) {
        mix(static_cast<std::uint64_t>(prod->id()));
        mixStr(prod->name());
    }
    return h;
}

SnapshotData
captureSnapshot(core::Engine &engine)
{
    SnapshotData snap;
    snap.fingerprint = programFingerprint(engine.program());
    snap.totals = engine.totals();
    snap.batch_seq = engine.batchSeq();
    snap.halted = engine.halted();
    snap.next_tag = engine.workingMemory().nextTag();

    const ops5::SymbolTable &syms = engine.program().symbols();
    snap.symbols.reserve(syms.size());
    for (std::size_t i = 0; i < syms.size(); ++i)
        snap.symbols.push_back(
            syms.name(static_cast<ops5::SymbolId>(i)));

    for (const ops5::Wme *wme : engine.workingMemory().liveElements()) {
        SnapshotWme sw;
        sw.tag = wme->timeTag();
        sw.cls = wme->className();
        sw.fields.reserve(wme->fieldCount());
        for (int f = 0; f < wme->fieldCount(); ++f)
            sw.fields.push_back(wme->field(f));
        snap.wmes.push_back(std::move(sw));
    }

    snap.fired = engine.matcher().conflictSet().firedKeys();
    std::sort(snap.fired.begin(), snap.fired.end(),
              [](const ops5::InstantiationKey &a,
                 const ops5::InstantiationKey &b) {
                  if (a.production_id != b.production_id)
                      return a.production_id < b.production_id;
                  return a.tags < b.tags;
              });

    if (auto *rete =
            dynamic_cast<rete::ReteMatcher *>(&engine.matcher()))
        snap.rete = captureReteState(*rete);
    return snap;
}

std::vector<std::uint8_t>
encodeSnapshot(const SnapshotData &snap)
{
    ByteWriter w;
    w.u64(kSnapshotMagic);
    w.u32(kSnapshotVersion);
    w.u32(0); // reserved
    w.u64(snap.fingerprint);
    w.u64(snap.totals.cycles);
    w.u64(snap.totals.firings);
    w.u64(snap.totals.wme_changes);
    w.u8(snap.totals.halted ? 1 : 0);
    w.u8(snap.totals.quiescent ? 1 : 0);
    w.u8(snap.halted ? 1 : 0);
    w.u64(snap.batch_seq);
    w.u64(snap.next_tag);

    w.u32(static_cast<std::uint32_t>(snap.symbols.size()));
    for (const std::string &s : snap.symbols)
        w.str(s);

    w.u64(snap.wmes.size());
    for (const SnapshotWme &sw : snap.wmes) {
        w.u64(sw.tag);
        w.u32(sw.cls);
        w.u32(static_cast<std::uint32_t>(sw.fields.size()));
        for (const ops5::Value &v : sw.fields)
            w.value(v);
    }

    w.u32(static_cast<std::uint32_t>(snap.fired.size()));
    for (const ops5::InstantiationKey &key : snap.fired)
        writeKey(w, key);

    w.u8(snap.rete.present ? 1 : 0);
    if (snap.rete.present) {
        w.u32(static_cast<std::uint32_t>(snap.rete.nodes.size()));
        for (const ReteNodeState &ns : snap.rete.nodes) {
            w.u32(static_cast<std::uint32_t>(ns.node_id));
            w.u8(ns.kind);
            if (ns.kind == kNodeAlpha) {
                w.u32(static_cast<std::uint32_t>(ns.items.size()));
                for (ops5::TimeTag t : ns.items)
                    w.u64(t);
            } else {
                w.u32(static_cast<std::uint32_t>(ns.tokens.size()));
                for (std::size_t i = 0; i < ns.tokens.size(); ++i) {
                    writeToken(w, ns.tokens[i]);
                    if (ns.kind == kNodeNot)
                        w.u32(static_cast<std::uint32_t>(ns.counts[i]));
                }
            }
        }
        w.u32(static_cast<std::uint32_t>(snap.rete.live.size()));
        for (const ops5::InstantiationKey &key : snap.rete.live)
            writeKey(w, key);
    }

    std::vector<std::uint8_t> bytes = w.take();
    std::uint32_t crc = crc32(bytes);
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    return bytes;
}

SnapshotData
decodeSnapshot(std::span<const std::uint8_t> bytes)
{
    if (bytes.size() < 20)
        throw DurableError("snapshot too short to be valid");
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
    std::span<const std::uint8_t> body =
        bytes.subspan(0, bytes.size() - 4);
    if (crc32(body) != stored)
        throw DurableError("snapshot CRC mismatch (corrupt or torn)");

    ByteReader r(body);
    if (r.u64() != kSnapshotMagic)
        throw DurableError("not a snapshot file (bad magic)");
    std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        throw DurableError("unsupported snapshot version " +
                           std::to_string(version));
    r.u32(); // reserved

    SnapshotData snap;
    snap.fingerprint = r.u64();
    snap.totals.cycles = r.u64();
    snap.totals.firings = r.u64();
    snap.totals.wme_changes = r.u64();
    snap.totals.halted = r.u8() != 0;
    snap.totals.quiescent = r.u8() != 0;
    snap.halted = r.u8() != 0;
    snap.batch_seq = r.u64();
    snap.next_tag = r.u64();

    std::uint32_t n_syms = r.u32();
    snap.symbols.reserve(n_syms);
    for (std::uint32_t i = 0; i < n_syms; ++i)
        snap.symbols.push_back(r.str());

    std::uint64_t n_wmes = r.u64();
    snap.wmes.reserve(n_wmes);
    for (std::uint64_t i = 0; i < n_wmes; ++i) {
        SnapshotWme sw;
        sw.tag = r.u64();
        sw.cls = static_cast<ops5::SymbolId>(r.u32());
        std::uint32_t nf = r.u32();
        sw.fields.reserve(nf);
        for (std::uint32_t f = 0; f < nf; ++f)
            sw.fields.push_back(r.value());
        snap.wmes.push_back(std::move(sw));
    }

    std::uint32_t n_fired = r.u32();
    snap.fired.reserve(n_fired);
    for (std::uint32_t i = 0; i < n_fired; ++i)
        snap.fired.push_back(readKey(r));

    if (r.u8() != 0) {
        snap.rete.present = true;
        std::uint32_t n_nodes = r.u32();
        snap.rete.nodes.reserve(n_nodes);
        for (std::uint32_t i = 0; i < n_nodes; ++i) {
            ReteNodeState ns;
            ns.node_id = static_cast<std::int32_t>(r.u32());
            ns.kind = r.u8();
            if (ns.kind == kNodeAlpha) {
                std::uint32_t n = r.u32();
                ns.items.reserve(n);
                for (std::uint32_t k = 0; k < n; ++k)
                    ns.items.push_back(r.u64());
            } else if (ns.kind == kNodeBeta || ns.kind == kNodeNot) {
                std::uint32_t n = r.u32();
                ns.tokens.reserve(n);
                for (std::uint32_t k = 0; k < n; ++k) {
                    ns.tokens.push_back(readToken(r));
                    if (ns.kind == kNodeNot)
                        ns.counts.push_back(
                            static_cast<std::int32_t>(r.u32()));
                }
            } else {
                throw DurableError("bad match-state node kind byte");
            }
            snap.rete.nodes.push_back(std::move(ns));
        }
        std::uint32_t n_live = r.u32();
        snap.rete.live.reserve(n_live);
        for (std::uint32_t i = 0; i < n_live; ++i)
            snap.rete.live.push_back(readKey(r));
    }
    if (!r.atEnd())
        throw DurableError("snapshot has trailing bytes");
    return snap;
}

void
writeSnapshotFile(const std::string &path, const SnapshotData &snap)
{
    writeFileAtomic(path, encodeSnapshot(snap));
}

SnapshotData
readSnapshotFile(const std::string &path)
{
    return decodeSnapshot(readFileAll(path));
}

void
replayRestore(core::Engine &engine, const SnapshotData &snap)
{
    checkRestorable(engine, snap);
    std::vector<ops5::WmeChange> changes = loadWmes(engine, snap);
    // One batch to fixpoint: at a cycle barrier the conflict set is a
    // pure function of working memory, so re-matching the snapshotted
    // WM reproduces it for every matcher configuration.
    engine.matcher().processChanges(changes);
    engine.matcher().conflictSet().clearTombstones();
    ops5::ConflictSet &cs = engine.matcher().conflictSet();
    for (const ops5::InstantiationKey &key : snap.fired)
        cs.markFiredKey(key);
    engine.restoreCounters(snap.totals, snap.batch_seq, snap.halted);
}

void
stateRestore(core::Engine &engine, rete::ReteMatcher &matcher,
             const SnapshotData &snap, RestoreValidation validation)
{
    if (!snap.rete.present)
        throw DurableError(
            "snapshot carries no match state; use replayRestore");
    checkRestorable(engine, snap);
    loadWmes(engine, snap); // no matcher pass — that is the point

    ops5::WorkingMemory &wm = engine.workingMemory();
    auto wmeByTag = [&wm](ops5::TimeTag tag) {
        const ops5::Wme *wme = wm.findByTag(tag);
        if (!wme)
            throw DurableError(
                "match state references unknown time tag " +
                std::to_string(tag));
        return wme;
    };
    auto buildToken = [&](const std::vector<ops5::TimeTag> &tags) {
        std::vector<const ops5::Wme *> wmes;
        wmes.reserve(tags.size());
        for (ops5::TimeTag t : tags)
            wmes.push_back(wmeByTag(t));
        return rete::Token(wmes);
    };

    rete::Network &net = matcher.network();
    const auto &nodes = net.nodes();
    net.resetState();
    // resetState re-seeds the dummy top token, but the snapshot image
    // carries it too; restore strictly from the image.
    net.top()->clearState();

    for (const ReteNodeState &ns : snap.rete.nodes) {
        if (ns.node_id < 0 ||
            static_cast<std::size_t>(ns.node_id) >= nodes.size())
            throw DurableError("match state references node id " +
                               std::to_string(ns.node_id) +
                               " outside the network");
        rete::Node *node = nodes[static_cast<std::size_t>(ns.node_id)]
                               .get();
        if (ns.kind == kNodeAlpha) {
            if (node->kind != rete::NodeKind::AlphaMemory)
                throw DurableError("node kind mismatch at id " +
                                   std::to_string(ns.node_id));
            auto *am = static_cast<rete::AlphaMemoryNode *>(node);
            for (ops5::TimeTag t : ns.items)
                am->items.push_back(wmeByTag(t));
        } else if (ns.kind == kNodeBeta) {
            if (node->kind != rete::NodeKind::BetaMemory)
                throw DurableError("node kind mismatch at id " +
                                   std::to_string(ns.node_id));
            auto *bm = static_cast<rete::BetaMemoryNode *>(node);
            // Raw slab fill; rebuildIndexes below reconstructs the
            // identity index and probe buckets over these slots.
            for (const auto &tags : ns.tokens)
                bm->store.insert(buildToken(tags));
        } else {
            if (node->kind != rete::NodeKind::Not)
                throw DurableError("node kind mismatch at id " +
                                   std::to_string(ns.node_id));
            auto *nn = static_cast<rete::NotNode *>(node);
            for (std::size_t i = 0; i < ns.tokens.size(); ++i)
                nn->entries.push_back(
                    {buildToken(ns.tokens[i]), ns.counts[i]});
        }
    }

    ops5::ConflictSet &cs = matcher.conflictSet();
    const auto &productions = engine.program().productions();
    for (const ops5::InstantiationKey &key : snap.rete.live) {
        if (key.production_id < 0 ||
            static_cast<std::size_t>(key.production_id) >=
                productions.size())
            throw DurableError(
                "match state references production id " +
                std::to_string(key.production_id) +
                " outside the program");
        ops5::Instantiation inst;
        inst.production =
            productions[static_cast<std::size_t>(key.production_id)]
                .get();
        inst.wmes.reserve(key.tags.size());
        for (ops5::TimeTag t : key.tags)
            inst.wmes.push_back(wmeByTag(t));
        cs.insert(std::move(inst));
    }
    for (const ops5::InstantiationKey &key : snap.fired)
        cs.markFiredKey(key);
    matcher.rebuildIndexes();

    rete::ValidationResult check =
        validation == RestoreValidation::Full
            ? rete::validateMatcherState(net, wm.liveElements(), cs)
            : rete::validateStructure(net);
    if (!check.ok())
        throw DurableError("state restore failed validation: " +
                           check.summary());
    engine.restoreCounters(snap.totals, snap.batch_seq, snap.halted);
}

namespace {

/**
 * True when the snapshot's stateful-node roster (ids and kinds, in
 * network order) is exactly the network's. A snapshot captured on the
 * shared node layout must not state-restore into a private-state
 * build of the same program — the node ids mean different things.
 */
bool
stateCompatible(const rete::Network &net, const ReteState &rs)
{
    std::size_t i = 0;
    for (const auto &node : net.nodes()) {
        std::uint8_t kind;
        switch (node->kind) {
          case rete::NodeKind::AlphaMemory: kind = kNodeAlpha; break;
          case rete::NodeKind::BetaMemory: kind = kNodeBeta; break;
          case rete::NodeKind::Not: kind = kNodeNot; break;
          default: continue;
        }
        if (i >= rs.nodes.size() || rs.nodes[i].node_id != node->id ||
            rs.nodes[i].kind != kind)
            return false;
        ++i;
    }
    return i == rs.nodes.size();
}

} // namespace

bool
restoreSnapshot(core::Engine &engine, const SnapshotData &snap,
                RestoreValidation validation)
{
    auto *rete = dynamic_cast<rete::ReteMatcher *>(&engine.matcher());
    if (snap.rete.present && rete &&
        stateCompatible(rete->network(), snap.rete)) {
        stateRestore(engine, *rete, snap, validation);
        return true;
    }
    replayRestore(engine, snap);
    return false;
}

} // namespace psm::durable
