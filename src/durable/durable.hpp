/**
 * @file
 * Umbrella header for the durable-state subsystem: binary format,
 * snapshots (replay + state restore), the write-ahead log, and the
 * per-engine durability manager. See docs/ARCHITECTURE.md §10.
 */

#ifndef PSM_DURABLE_DURABLE_HPP
#define PSM_DURABLE_DURABLE_HPP

#include "durable/format.hpp"
#include "durable/manager.hpp"
#include "durable/snapshot.hpp"
#include "durable/wal.hpp"

#endif // PSM_DURABLE_DURABLE_HPP
