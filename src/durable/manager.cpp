#include "durable/manager.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/flight_recorder.hpp"

namespace psm::durable {

namespace fs = std::filesystem;

namespace {

constexpr const char *kWalFile = "wal.plog";
constexpr const char *kSnapPrefix = "snap-";
constexpr const char *kSnapSuffix = ".psnap";

/** Parses "snap-<seq>.psnap"; false when @p name is something else. */
bool
parseSnapshotName(const std::string &name, std::uint64_t &seq)
{
    const std::string prefix = kSnapPrefix;
    const std::string suffix = kSnapSuffix;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    seq = std::stoull(digits);
    return true;
}

/** All snapshot files in @p dir, newest (highest seq) first. */
std::vector<std::pair<std::uint64_t, std::string>>
listSnapshots(const std::string &dir)
{
    std::vector<std::pair<std::uint64_t, std::string>> out;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t seq = 0;
        if (parseSnapshotName(entry.path().filename().string(), seq))
            out.emplace_back(seq, entry.path().string());
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    return out;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

Manager::Manager(core::Engine &engine, DurableOptions options,
                 telemetry::Registry *metrics)
    : engine_(engine), options_(std::move(options)), metrics_(metrics),
      fingerprint_(programFingerprint(engine.program())),
      last_checkpoint_(std::chrono::steady_clock::now())
{
    if (!options_.enabled())
        throw DurableError("Manager requires a state directory");
}

Manager::~Manager()
{
    if (began_)
        engine_.setBatchObserver({});
}

std::string
Manager::walPath() const
{
    return options_.dir + "/" + kWalFile;
}

std::string
Manager::snapshotPath(std::uint64_t seq) const
{
    return options_.dir + "/" + kSnapPrefix + std::to_string(seq) +
           kSnapSuffix;
}

bool
Manager::hasState(const std::string &dir)
{
    std::error_code ec;
    if (fs::exists(fs::path(dir) / kWalFile, ec))
        return true;
    return !listSnapshots(dir).empty();
}

std::vector<std::pair<std::uint64_t, std::string>>
Manager::snapshots(const std::string &dir)
{
    return listSnapshots(dir);
}

RecoveryStats
Manager::recover()
{
    auto t0 = std::chrono::steady_clock::now();
    RecoveryStats stats;
    recover_ran_ = true;

    // Newest parseable snapshot wins; a corrupt newest falls back to
    // the previous one (keep_snapshots > 1 keeps that fallback).
    bool have_snap = false;
    SnapshotData snap;
    std::string snap_error;
    for (const auto &[seq, path] : listSnapshots(options_.dir)) {
        try {
            snap = readSnapshotFile(path);
            have_snap = true;
            break;
        } catch (const DurableError &e) {
            snap_error = e.what();
        }
    }
    if (have_snap) {
        stats.state_restored = restoreSnapshot(engine_, snap);
        stats.snapshot_seq = snap.batch_seq;
        stats.recovered = true;
    }

    WalReadResult wal = readWal(walPath(), fingerprint_);
    wal_valid_bytes_ = wal.valid_bytes;
    wal_scanned_ = true;
    stats.wal_truncated = wal.truncated;
    stats.wal_truncation_reason = wal.truncation_reason;
    if (!have_snap && wal.records.empty() && !snap_error.empty())
        throw DurableError(
            "every snapshot is corrupt and the WAL is empty: " +
            snap_error);

    // Replay the tail: records the snapshot already covers are
    // skipped; applyLoggedBatch rejects gaps and divergence.
    std::uint64_t base = engine_.batchSeq();
    for (const core::LoggedBatch &record : wal.records) {
        if (record.seq <= base)
            continue;
        try {
            engine_.applyLoggedBatch(record);
        } catch (const std::runtime_error &e) {
            throw DurableError(std::string("WAL replay failed: ") +
                               e.what());
        }
        ++stats.wal_records_replayed;
        stats.recovered = true;
    }

    stats.recovery_ms = msSince(t0);
    if (stats.recovered)
        obs::flightRecord(
            obs::FlightEvent::Recovery, 0,
            stats.wal_records_replayed,
            static_cast<std::uint64_t>(stats.recovery_ms));
    if (metrics_ && stats.recovered) {
        metrics_->count(0, telemetry::Counter::DurableRecoveries);
        metrics_->observe(
            0, telemetry::Histogram::DurableRecoveryMs,
            static_cast<std::uint64_t>(stats.recovery_ms));
    }
    recovery_ = stats;
    return stats;
}

void
Manager::begin()
{
    if (began_)
        return;
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec)
        throw DurableError("cannot create state directory " +
                           options_.dir + ": " + ec.message());
    if (!recover_ran_ && hasState(options_.dir))
        throw DurableError(
            options_.dir +
            " already holds durable state; recover() first (or point "
            "the session at a fresh directory)");
    if (!wal_scanned_) {
        WalReadResult wal = readWal(walPath(), fingerprint_);
        wal_valid_bytes_ = wal.valid_bytes;
        wal_scanned_ = true;
    }
    // Cut any torn tail before appending: a new record after garbage
    // would be unreachable to recovery.
    std::error_code size_ec;
    auto on_disk = fs::file_size(walPath(), size_ec);
    if (!size_ec && on_disk > wal_valid_bytes_)
        truncateWal(walPath(), wal_valid_bytes_);

    wal_ = std::make_unique<WalWriter>(walPath(), options_.fsync,
                                       fingerprint_);
    last_checkpoint_ = std::chrono::steady_clock::now();
    engine_.setBatchObserver(
        [this](const core::BatchCommit &commit) { onBatch(commit); });
    began_ = true;
}

void
Manager::onBatch(const core::BatchCommit &commit)
{
    auto t0 = std::chrono::steady_clock::now();
    core::LoggedBatch record;
    record.seq = commit.seq;
    record.origin = commit.origin;
    record.halted = commit.halted;
    record.cycles_after = engine_.totals().cycles;
    record.wme_changes_after = engine_.totals().wme_changes;
    record.next_tag_after = engine_.workingMemory().nextTag();
    if (commit.fired) {
        ops5::InstantiationKey key =
            ops5::InstantiationKey::of(*commit.fired);
        record.has_fired = true;
        record.fired_production = key.production_id;
        record.fired_tags = std::move(key.tags);
    }
    record.changes.reserve(commit.changes.size());
    for (const ops5::WmeChange &change : commit.changes) {
        core::LoggedBatch::Change c;
        c.kind = change.kind;
        c.tag = change.wme->timeTag();
        c.cls = change.wme->className();
        if (change.kind == ops5::ChangeKind::Insert) {
            c.fields.reserve(change.wme->fieldCount());
            for (int f = 0; f < change.wme->fieldCount(); ++f)
                c.fields.push_back(change.wme->field(f));
        }
        record.changes.push_back(std::move(c));
    }

    std::uint64_t bytes_before = wal_->payloadBytes();
    std::vector<std::uint8_t> frame = frameRecord(record);
    wal_->appendRawFrame(frame);
    obs::flightRecord(obs::FlightEvent::WalAppend, 0, record.seq,
                      wal_->payloadBytes() - bytes_before);
    if (options_.ship)
        options_.ship->onWalFrame(record.seq, frame);
    if (metrics_) {
        metrics_->count(0, telemetry::Counter::DurableWalRecords);
        metrics_->count(0, telemetry::Counter::DurableWalBytes,
                        wal_->payloadBytes() - bytes_before);
        metrics_->observe(
            0, telemetry::Histogram::DurableWalAppendUs,
            static_cast<std::uint64_t>(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
    }
    ++batches_since_checkpoint_;
    maybeCheckpoint();
}

void
Manager::maybeCheckpoint()
{
    const CheckpointPolicy &policy = options_.checkpoint;
    bool due = false;
    if (policy.every_batches > 0 &&
        batches_since_checkpoint_ >= policy.every_batches)
        due = true;
    if (policy.every.count() > 0 &&
        std::chrono::steady_clock::now() - last_checkpoint_ >=
            policy.every)
        due = true;
    if (due)
        checkpoint();
}

void
Manager::checkpoint()
{
    auto t0 = std::chrono::steady_clock::now();
    SnapshotData snap = captureSnapshot(engine_);
    std::vector<std::uint8_t> bytes = encodeSnapshot(snap);
    writeFileAtomic(snapshotPath(snap.batch_seq), bytes);
    // The snapshot is durable; the log behind it is now redundant.
    if (wal_)
        wal_->reset();

    std::size_t keep = std::max<std::size_t>(options_.keep_snapshots, 1);
    auto snaps = listSnapshots(options_.dir);
    for (std::size_t i = keep; i < snaps.size(); ++i) {
        std::error_code ec;
        fs::remove(snaps[i].second, ec);
    }

    ++snapshots_written_;
    batches_since_checkpoint_ = 0;
    last_checkpoint_ = std::chrono::steady_clock::now();
    if (options_.ship)
        options_.ship->onCheckpoint(snap.batch_seq,
                                    snapshotPath(snap.batch_seq));
    obs::flightRecord(obs::FlightEvent::Checkpoint, 0,
                      snap.batch_seq, bytes.size());
    if (metrics_) {
        metrics_->count(0, telemetry::Counter::DurableSnapshots);
        metrics_->observe(0, telemetry::Histogram::DurableSnapshotBytes,
                          bytes.size());
        metrics_->observe(0, telemetry::Histogram::DurableCheckpointMs,
                          static_cast<std::uint64_t>(msSince(t0)));
    }
}

void
Manager::sync()
{
    if (wal_) {
        wal_->sync();
        obs::flightRecord(obs::FlightEvent::WalSync);
    }
}

} // namespace psm::durable
