/**
 * @file
 * The write-ahead log: one CRC-framed record per committed WM change
 * batch (a recognize-act cycle, an external batch, or the initial
 * load), appended at the cycle barrier.
 *
 * File layout: a fixed header (magic, version, program fingerprint)
 * followed by records framed as
 *
 *     u32 payload_length | u32 crc32(payload) | payload
 *
 * Recovery reads records until the first torn or corrupt frame and
 * truncates there — a crash mid-append loses at most the batch being
 * written, never an earlier one. Fsync policy trades durability
 * window against append latency: `always` fsyncs per record, `batch`
 * leaves syncing to explicit sync() calls (the serving layer syncs
 * once per drained queue batch), `none` never syncs (the OS decides).
 */

#ifndef PSM_DURABLE_WAL_HPP
#define PSM_DURABLE_WAL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "durable/format.hpp"

namespace psm::durable {

/** When the WAL file is fsynced. */
enum class FsyncPolicy : std::uint8_t {
    None,   ///< never; fastest, durability left to the OS
    Batch,  ///< on explicit sync() calls (per serve drain batch)
    Always, ///< after every record append
};

const char *fsyncPolicyName(FsyncPolicy p);

/** Parses "none" / "batch" / "always"; false on anything else. */
bool parseFsyncPolicy(const std::string &text, FsyncPolicy &out);

/** Serializes one logged batch into a WAL record payload. */
std::vector<std::uint8_t> encodeBatch(const core::LoggedBatch &batch);

/** Decodes one WAL record payload. DurableError on corruption. */
core::LoggedBatch decodeBatch(std::span<const std::uint8_t> payload);

/** Serializes one logged batch into a complete WAL frame
 *  (`u32 length | u32 crc | payload`) — the exact bytes append()
 *  writes, and the unit WAL shipping moves between processes. */
std::vector<std::uint8_t> frameRecord(const core::LoggedBatch &batch);

/**
 * Append-side handle on one WAL file. Creates the file (with header)
 * when absent or empty; when opening an existing WAL the caller must
 * have already truncated any torn tail (WalReadResult::valid_bytes —
 * Manager does this during recovery).
 */
class WalWriter
{
  public:
    WalWriter(std::string path, FsyncPolicy policy,
              std::uint64_t fingerprint);
    ~WalWriter();

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /** Appends one record; fsyncs when the policy is Always. */
    void append(const core::LoggedBatch &batch);

    /**
     * Appends one pre-framed record (the frameRecord() shape) after
     * re-validating its length field and CRC — the WAL-shipping
     * receive path, which must never let a corrupt network frame
     * poison the replica log. DurableError on a malformed frame.
     */
    void appendRawFrame(std::span<const std::uint8_t> frame);

    /** Forces an fsync now (no-op when the policy is None). */
    void sync();

    /** Truncates back to an empty log (header only) — called after a
     *  checkpoint makes the logged tail redundant. */
    void reset();

    std::uint64_t recordsAppended() const { return records_; }
    std::uint64_t payloadBytes() const { return payload_bytes_; }

  private:
    void writeRaw(const std::uint8_t *data, std::size_t size);
    void writeHeader();

    std::string path_;
    FsyncPolicy policy_;
    std::uint64_t fingerprint_;
    int fd_ = -1;
    std::uint64_t records_ = 0;
    std::uint64_t payload_bytes_ = 0;
};

/** Outcome of scanning a WAL file. */
struct WalReadResult
{
    std::vector<core::LoggedBatch> records;
    /** Offset of the first byte past the last intact record; recovery
     *  truncates the file here before appending again. */
    std::uint64_t valid_bytes = 0;
    bool truncated = false;      ///< a torn/corrupt tail was dropped
    std::string truncation_reason;
};

/**
 * Reads every intact record. A missing file reads as an empty log.
 * A torn or corrupt tail sets `truncated` and stops the scan — that
 * is the expected shape of a crash mid-append, not an error. A bad
 * header (wrong magic/version/fingerprint) IS an error: the file is
 * not this session's log.
 */
WalReadResult readWal(const std::string &path,
                      std::uint64_t expect_fingerprint);

/** Truncates @p path to @p valid_bytes (crash recovery's torn-tail
 *  cut) and fsyncs. DurableError on I/O failure. */
void truncateWal(const std::string &path, std::uint64_t valid_bytes);

/** One raw WAL frame plus the sequence number decoded from it. */
struct WalFrame
{
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes; ///< full frame: len | crc | payload
};

/**
 * Read-only "frames since seq" iterator for WAL shipping: every intact
 * frame whose batch sequence is greater than @p after_seq, as raw
 * frame bytes ready to append to a replica log. Stops at the first
 * torn or corrupt frame exactly like readWal — safe to run against a
 * log that is concurrently being appended to, because frames become
 * visible atomically in file order and the scan simply stops at the
 * growing tail. A missing file reads as no frames.
 */
std::vector<WalFrame> readWalFramesSince(const std::string &path,
                                         std::uint64_t expect_fingerprint,
                                         std::uint64_t after_seq);

} // namespace psm::durable

#endif // PSM_DURABLE_WAL_HPP
