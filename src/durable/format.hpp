/**
 * @file
 * Binary plumbing for the durable layer: CRC32, a little-endian
 * byte writer/reader pair, the Value codec, and the error type.
 *
 * Both durable artifacts — snapshots and write-ahead-log records —
 * are length-delimited byte payloads protected by CRC32 so that torn
 * writes and bit flips are detected at read time rather than silently
 * corrupting a recovered session.
 */

#ifndef PSM_DURABLE_FORMAT_HPP
#define PSM_DURABLE_FORMAT_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ops5/value.hpp"

namespace psm::durable {

/** Any durable-layer failure: I/O, corruption, or a snapshot/WAL
 *  that does not belong to the running program. */
class DurableError : public std::runtime_error
{
  public:
    explicit DurableError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** CRC-32 (IEEE 802.3 polynomial) over @p data. */
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/** Append-only little-endian encoder backing both file formats. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void value(const ops5::Value &v);

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked decoder; every overrun throws DurableError. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();
    ops5::Value value();

    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

  private:
    void need(std::size_t n);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

/** Reads an entire file into memory. DurableError on I/O failure;
 *  a missing file is also an error (callers stat first). */
std::vector<std::uint8_t> readFileAll(const std::string &path);

/**
 * Writes @p bytes to @p path crash-atomically: a sibling temp file is
 * written and fsynced, renamed over the target, and the directory is
 * fsynced — so a crash leaves either the old file or the new one,
 * never a torn mixture.
 */
void writeFileAtomic(const std::string &path,
                     std::span<const std::uint8_t> bytes);

} // namespace psm::durable

#endif // PSM_DURABLE_FORMAT_HPP
