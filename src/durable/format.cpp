#include "durable/format.hpp"

#include <array>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace psm::durable {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::uint8_t byte : data)
        c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
ByteWriter::value(const ops5::Value &v)
{
    u8(static_cast<std::uint8_t>(v.kind()));
    switch (v.kind()) {
      case ops5::ValueKind::Nil:
        u64(0);
        break;
      case ops5::ValueKind::Symbol:
        u64(v.asSymbol());
        break;
      case ops5::ValueKind::Int:
        u64(static_cast<std::uint64_t>(v.asInt()));
        break;
      case ops5::ValueKind::Float:
        f64(v.asDouble());
        break;
    }
}

void
ByteReader::need(std::size_t n)
{
    if (data_.size() - pos_ < n)
        throw DurableError("truncated payload: wanted " +
                           std::to_string(n) + " bytes, " +
                           std::to_string(data_.size() - pos_) + " left");
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return data_[pos_++];
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char *>(data_.data()) + pos_, n);
    pos_ += n;
    return s;
}

ops5::Value
ByteReader::value()
{
    auto kind = static_cast<ops5::ValueKind>(u8());
    switch (kind) {
      case ops5::ValueKind::Nil:
        u64();
        return {};
      case ops5::ValueKind::Symbol:
        return ops5::Value::symbol(
            static_cast<ops5::SymbolId>(u64()));
      case ops5::ValueKind::Int:
        return ops5::Value::integer(static_cast<std::int64_t>(u64()));
      case ops5::ValueKind::Float:
        return ops5::Value::real(f64());
    }
    throw DurableError("bad Value kind byte");
}

namespace {

[[noreturn]] void
ioError(const std::string &path, const std::string &op)
{
    throw DurableError(op + " failed for " + path + ": " +
                       std::strerror(errno));
}

/** RAII fd so error paths cannot leak descriptors. */
struct Fd
{
    int fd = -1;
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

std::string
dirnameOf(const std::string &path)
{
    auto slash = path.find_last_of('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

} // namespace

std::vector<std::uint8_t>
readFileAll(const std::string &path)
{
    Fd f{::open(path.c_str(), O_RDONLY)};
    if (f.fd < 0)
        ioError(path, "open");
    std::vector<std::uint8_t> out;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        ssize_t n = ::read(f.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioError(path, "read");
        }
        if (n == 0)
            break;
        out.insert(out.end(), chunk, chunk + n);
    }
    return out;
}

void
writeFileAtomic(const std::string &path,
                std::span<const std::uint8_t> bytes)
{
    std::string tmp = path + ".tmp";
    {
        Fd f{::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644)};
        if (f.fd < 0)
            ioError(tmp, "open");
        std::size_t off = 0;
        while (off < bytes.size()) {
            ssize_t n =
                ::write(f.fd, bytes.data() + off, bytes.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ioError(tmp, "write");
            }
            off += static_cast<std::size_t>(n);
        }
        if (::fsync(f.fd) != 0)
            ioError(tmp, "fsync");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        ioError(path, "rename");
    // Persist the rename itself: fsync the containing directory.
    Fd dir{::open(dirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY)};
    if (dir.fd >= 0)
        ::fsync(dir.fd);
}

} // namespace psm::durable
