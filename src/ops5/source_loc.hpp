/**
 * @file
 * Source positions carried from the lexer through the parser into the
 * compiled program, so downstream consumers (parse errors, the static
 * analyzer's diagnostics) can point at `file:line:col` instead of at
 * a production name alone.
 */

#ifndef PSM_OPS5_SOURCE_LOC_HPP
#define PSM_OPS5_SOURCE_LOC_HPP

namespace psm::ops5 {

/**
 * A line:column position in the OPS5 source text (1-based; {0,0}
 * means "unknown", e.g. for programmatically built programs).
 *
 * Deliberately excluded from every structural operator== so that two
 * textually distinct but structurally identical tests still compare
 * equal — the Rete compiler's node sharing depends on that.
 */
struct SourceLoc
{
    int line = 0;
    int col = 0;

    bool known() const { return line > 0; }
};

} // namespace psm::ops5

#endif // PSM_OPS5_SOURCE_LOC_HPP
