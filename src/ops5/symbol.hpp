/**
 * @file
 * Interned symbols for the OPS5 substrate.
 *
 * Every identifier that appears in an OPS5 program (class names,
 * attribute names, symbolic constants, variable names like "<x>") is
 * interned into a SymbolTable and referred to by a dense 32-bit id.
 * Interning makes symbol equality a single integer compare, which is
 * what the Rete constant-test nodes execute millions of times.
 */

#ifndef PSM_OPS5_SYMBOL_HPP
#define PSM_OPS5_SYMBOL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace psm::ops5 {

/** Dense id of an interned symbol. Id 0 is reserved for "nil". */
using SymbolId = std::uint32_t;

/** The reserved id of the distinguished symbol "nil". */
inline constexpr SymbolId kNilSymbol = 0;

/**
 * Append-only intern table mapping strings to dense SymbolIds.
 *
 * The table is not thread safe for interning; programs are parsed and
 * compiled before any parallel match phase begins, and lookup by id
 * (name()) touches only immutable storage after that point.
 */
class SymbolTable
{
  public:
    SymbolTable();

    /** Intern @p text, returning the existing id if already present. */
    SymbolId intern(std::string_view text);

    /**
     * Look up an already-interned symbol.
     * @return the id, or kNilSymbol if the text was never interned.
     */
    SymbolId find(std::string_view text) const;

    /** Spelling of symbol @p id. @pre id < size(). */
    const std::string &name(SymbolId id) const { return names_.at(id); }

    /** Number of interned symbols (including "nil"). */
    std::size_t size() const { return names_.size(); }

    /**
     * Lexicographic three-way comparison of two symbols' spellings,
     * used by relational predicates applied to symbolic values.
     */
    int compare(SymbolId a, SymbolId b) const;

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, SymbolId> ids_;
};

} // namespace psm::ops5

#endif // PSM_OPS5_SYMBOL_HPP
