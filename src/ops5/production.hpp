/**
 * @file
 * Productions: compiled if-then rules, their right-hand-side actions,
 * and the Program container holding a whole rule base.
 */

#ifndef PSM_OPS5_PRODUCTION_HPP
#define PSM_OPS5_PRODUCTION_HPP

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "condition.hpp"

namespace psm::ops5 {

/** Kind of a right-hand-side value term. */
enum class RhsTermKind : std::uint8_t {
    Constant,   ///< literal value
    Variable,   ///< value bound by the LHS (or a prior `bind`)
    FieldCopy,  ///< value of field N of the CE being modified
    Compute,    ///< arithmetic (compute ...) expression
};

struct ComputeNode;

/** A value expression on the right-hand side of a production. */
struct RhsTerm
{
    RhsTermKind kind = RhsTermKind::Constant;
    Value constant{};
    SymbolId var = kNilSymbol;
    int field = 0;
    std::shared_ptr<const ComputeNode> compute; ///< Compute payload

    static RhsTerm
    literal(Value v)
    {
        RhsTerm t;
        t.constant = v;
        return t;
    }

    static RhsTerm
    variable(SymbolId v)
    {
        RhsTerm t;
        t.kind = RhsTermKind::Variable;
        t.var = v;
        return t;
    }
};

/** Arithmetic operators of OPS5 (compute ...). */
enum class ComputeOp : std::uint8_t {
    Add,  ///< +
    Sub,  ///< -
    Mul,  ///< *
    Div,  ///< // (integer division when both operands are integers)
    Mod,  ///< \\ (modulus)
};

/**
 * One binary node of a (compute ...) expression. OPS5 arithmetic is
 * right-associative with no precedence: `a + b * c` parses as
 * `a + (b * c)` regardless of the operators involved.
 */
struct ComputeNode
{
    ComputeOp op = ComputeOp::Add;
    RhsTerm lhs;
    RhsTerm rhs;
};

/** Kind of a right-hand-side action. */
enum class ActionKind : std::uint8_t {
    Make,    ///< create a new WME
    Remove,  ///< retract the WME matched by CE #ce
    Modify,  ///< retract CE #ce's WME and re-make it with edits
    Bind,    ///< bind a variable to a computed value
    Write,   ///< print terms (diagnostic I/O)
    Halt,    ///< stop the recognize-act loop
};

/** One field assignment inside a Make or Modify action. */
struct FieldAssign
{
    int field = 0;
    RhsTerm term;
};

/** A compiled right-hand-side action. */
struct Action
{
    ActionKind kind = ActionKind::Make;
    SymbolId cls = kNilSymbol;        ///< Make: class of the new WME
    int ce = 0;                       ///< Remove/Modify: 1-based CE index
    SymbolId var = kNilSymbol;        ///< Bind: variable to set
    std::vector<FieldAssign> assigns; ///< Make/Modify field values
    std::vector<RhsTerm> terms;       ///< Write/Bind operands
    SourceLoc loc{};                  ///< position of the action's '('
};

/**
 * A compiled production: name, ordered condition elements, variable
 * binding table, and actions.
 */
class Production
{
  public:
    Production(std::string name, int id) : name_(std::move(name)), id_(id) {}

    const std::string &name() const { return name_; }

    /** Dense id within the owning Program. */
    int id() const { return id_; }

    const std::vector<ConditionElement> &lhs() const { return lhs_; }
    std::vector<ConditionElement> &lhs() { return lhs_; }

    const std::vector<Action> &rhs() const { return rhs_; }
    std::vector<Action> &rhs() { return rhs_; }

    const VariableBindings &bindings() const { return bindings_; }
    VariableBindings &bindings() { return bindings_; }

    /** Position of the production's name in the source (if parsed). */
    const SourceLoc &loc() const { return loc_; }
    void setLoc(SourceLoc loc) { loc_ = loc; }

    /** Number of non-negated condition elements. */
    int positiveCeCount() const;

    /** Total atomic test count across the LHS (OPS5 specificity). */
    int specificity() const;

  private:
    std::string name_;
    int id_;
    SourceLoc loc_{};
    std::vector<ConditionElement> lhs_;
    std::vector<Action> rhs_;
    VariableBindings bindings_;
};

/**
 * A whole OPS5 program: symbol table, class schemas, productions, and
 * the WME patterns of top-level `make` forms (the initial working
 * memory).
 *
 * Program owns the SymbolTable that every Value in its productions
 * refers into, so it is non-copyable and handed around by reference
 * or shared_ptr.
 */
class Program
{
  public:
    Program() = default;
    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;

    SymbolTable &symbols() { return symbols_; }
    const SymbolTable &symbols() const { return symbols_; }

    TypeRegistry &types() { return types_; }
    const TypeRegistry &types() const { return types_; }

    /** Adds a production, assigning it the next dense id. */
    Production &addProduction(std::string name);

    const std::vector<std::unique_ptr<Production>> &
    productions() const
    {
        return productions_;
    }

    /** Looks a production up by name; nullptr when absent. */
    const Production *findProduction(std::string_view name) const;

    /** Initial working memory: (class, fields) pairs in source order. */
    struct InitialWme
    {
        SymbolId cls;
        std::vector<Value> fields;
    };

    std::vector<InitialWme> &initialWmes() { return initial_; }
    const std::vector<InitialWme> &initialWmes() const { return initial_; }

    /**
     * Declares @p attr a vector attribute (OPS5 `vector-attribute`):
     * in WME-pattern positions it consumes a SEQUENCE of values
     * mapped to consecutive fields starting at its own.
     */
    void markVectorAttribute(SymbolId attr) { vector_attrs_.insert(attr); }

    bool
    isVectorAttribute(SymbolId attr) const
    {
        return vector_attrs_.count(attr) > 0;
    }

  private:
    SymbolTable symbols_;
    TypeRegistry types_;
    std::vector<std::unique_ptr<Production>> productions_;
    std::vector<InitialWme> initial_;
    std::set<SymbolId> vector_attrs_;
};

} // namespace psm::ops5

#endif // PSM_OPS5_PRODUCTION_HPP
