/**
 * @file
 * Umbrella header for the OPS5 language substrate.
 */

#ifndef PSM_OPS5_OPS5_HPP
#define PSM_OPS5_OPS5_HPP

#include "condition.hpp"   // IWYU pragma: export
#include "conflict.hpp"    // IWYU pragma: export
#include "lexer.hpp"       // IWYU pragma: export
#include "parser.hpp"      // IWYU pragma: export
#include "production.hpp"  // IWYU pragma: export
#include "rhs.hpp"         // IWYU pragma: export
#include "symbol.hpp"      // IWYU pragma: export
#include "value.hpp"       // IWYU pragma: export
#include "wme.hpp"         // IWYU pragma: export

#endif // PSM_OPS5_OPS5_HPP
