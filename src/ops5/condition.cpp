#include "condition.hpp"

#include <algorithm>
#include <sstream>

namespace psm::ops5 {

bool
AtomicTest::operator==(const AtomicTest &o) const
{
    return pred == o.pred && operand == o.operand &&
           constant == o.constant && set == o.set && var == o.var;
}

void
ConditionElement::addTest(int field, AtomicTest test)
{
    auto it = std::find_if(fields.begin(), fields.end(),
                           [field](const FieldTests &f) {
                               return f.field == field;
                           });
    if (it == fields.end()) {
        FieldTests ft;
        ft.field = field;
        ft.tests.push_back(std::move(test));
        auto pos = std::lower_bound(fields.begin(), fields.end(), field,
                                    [](const FieldTests &f, int v) {
                                        return f.field < v;
                                    });
        fields.insert(pos, std::move(ft));
    } else {
        it->tests.push_back(std::move(test));
    }
}

bool
ConditionElement::matchesConstants(const Wme &wme,
                                   const SymbolTable &syms) const
{
    if (wme.className() != cls)
        return false;
    for (const FieldTests &ft : fields) {
        const Value &actual = wme.field(ft.field);
        for (const AtomicTest &t : ft.tests) {
            switch (t.operand) {
              case OperandKind::Constant:
                if (!evalPredicate(t.pred, actual, t.constant, syms))
                    return false;
                break;
              case OperandKind::ConstantSet: {
                bool member = std::any_of(
                    t.set.begin(), t.set.end(),
                    [&](const Value &v) { return actual == v; });
                if (t.pred == Predicate::Eq ? !member : member)
                    return false;
                break;
              }
              case OperandKind::Variable:
                break; // needs binding context; handled by join tests
            }
        }
    }
    return true;
}

int
ConditionElement::testCount() const
{
    int n = 1; // the class test itself
    for (const FieldTests &ft : fields)
        n += static_cast<int>(ft.tests.size());
    return n;
}

std::string
ConditionElement::toString(const SymbolTable &syms,
                           const TypeRegistry &reg) const
{
    std::ostringstream os;
    if (negated)
        os << "-";
    os << "(" << syms.name(cls);
    const ClassSchema *schema = reg.findSchema(cls);
    for (const FieldTests &ft : fields) {
        os << " ^";
        if (schema && ft.field < schema->fieldCount())
            os << syms.name(schema->attributeAt(ft.field));
        else
            os << ft.field;
        for (const AtomicTest &t : ft.tests) {
            os << " ";
            if (t.pred != Predicate::Eq)
                os << predicateName(t.pred) << " ";
            switch (t.operand) {
              case OperandKind::Constant:
                os << t.constant.toString(syms);
                break;
              case OperandKind::ConstantSet:
                os << "<<";
                for (const Value &v : t.set)
                    os << " " << v.toString(syms);
                os << " >>";
                break;
              case OperandKind::Variable:
                os << syms.name(t.var);
                break;
            }
        }
    }
    os << ")";
    return os.str();
}

bool
VariableBindings::define(SymbolId var, VarLocation loc)
{
    for (const auto &[v, l] : vars_) {
        if (v == var)
            return false;
    }
    vars_.emplace_back(var, loc);
    return true;
}

const VarLocation *
VariableBindings::find(SymbolId var) const
{
    for (const auto &[v, l] : vars_) {
        if (v == var)
            return &l;
    }
    return nullptr;
}

} // namespace psm::ops5
