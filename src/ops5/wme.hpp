/**
 * @file
 * Working-memory elements, class schemas, and the working memory.
 *
 * OPS5 WMEs are flat records: a class symbol plus attribute/value
 * pairs. Attribute names map to dense field indices through a per-class
 * schema declared with `literalize` (or grown implicitly on first use),
 * so a WME is stored as a fixed vector of Values and attribute access
 * during match is a single indexed load — the representation the
 * paper's cost model assumes.
 */

#ifndef PSM_OPS5_WME_HPP
#define PSM_OPS5_WME_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "value.hpp"

namespace psm::ops5 {

/** Monotonic recency stamp assigned to each WME on insertion. */
using TimeTag = std::uint64_t;

/**
 * Per-class attribute layout: maps attribute symbols to field indices.
 */
class ClassSchema
{
  public:
    explicit ClassSchema(SymbolId cls) : cls_(cls) {}

    SymbolId className() const { return cls_; }

    /** Index of @p attr, adding a new field if unseen. */
    int fieldOf(SymbolId attr);

    /** Index of @p attr, or -1 if the class has no such attribute. */
    int findField(SymbolId attr) const;

    /** Attribute symbol stored at field @p index. */
    SymbolId attributeAt(int index) const { return attrs_.at(index); }

    int fieldCount() const { return static_cast<int>(attrs_.size()); }

  private:
    SymbolId cls_;
    std::vector<SymbolId> attrs_;
    std::unordered_map<SymbolId, int> index_;
};

/**
 * Registry of class schemas for one program (the `literalize` table).
 */
class TypeRegistry
{
  public:
    /** Schema for @p cls, creating an empty one on first reference. */
    ClassSchema &schema(SymbolId cls);

    /** Read-only lookup; nullptr when the class was never declared. */
    const ClassSchema *findSchema(SymbolId cls) const;

    std::size_t classCount() const { return schemas_.size(); }

  private:
    std::unordered_map<SymbolId, std::unique_ptr<ClassSchema>> schemas_;
};

/**
 * A working-memory element: class, time tag, and dense field vector.
 *
 * WMEs are immutable after creation (OPS5 `modify` is remove + make),
 * which is what makes sharing raw Wme pointers across parallel match
 * tasks safe.
 */
class Wme
{
  public:
    Wme(SymbolId cls, TimeTag tag, std::vector<Value> fields)
        : cls_(cls), tag_(tag), fields_(std::move(fields))
    {}

    SymbolId className() const { return cls_; }
    TimeTag timeTag() const { return tag_; }

    /** Value of field @p index; fields beyond the vector read as nil. */
    const Value &
    field(int index) const
    {
        static const Value nil{};
        if (index < 0 || index >= static_cast<int>(fields_.size()))
            return nil;
        return fields_[index];
    }

    int fieldCount() const { return static_cast<int>(fields_.size()); }

    /** Structural equality ignoring the time tag. */
    bool sameContents(const Wme &o) const;

    /** Renders "(class ^attr val ...)" using @p reg for field names. */
    std::string toString(const SymbolTable &syms,
                         const TypeRegistry &reg) const;

  private:
    SymbolId cls_;
    TimeTag tag_;
    std::vector<Value> fields_;
};

/** Direction of a working-memory change. */
enum class ChangeKind : std::uint8_t { Insert, Remove };

/**
 * One change to working memory, the unit the match phase consumes.
 * The Wme is owned by the WorkingMemory; a Remove change carries the
 * pointer of the element being retracted.
 */
struct WmeChange
{
    ChangeKind kind;
    const Wme *wme;
};

/**
 * The working memory: owns live WMEs and stamps time tags.
 *
 * Removal does not destroy the Wme object immediately — retracted
 * elements are parked until collectGarbage() so that match tasks and
 * conflict-set instantiations holding pointers never dangle within a
 * recognize-act cycle.
 */
class WorkingMemory
{
  public:
    /** Creates and inserts a new WME; returns the owned element. */
    const Wme *insert(SymbolId cls, std::vector<Value> fields);

    /**
     * Recreates an element under a caller-chosen time tag — the
     * durable layer's restore path, where logged/snapshotted tags are
     * load-bearing (LEX/MEA recency compares them). Advances the tag
     * counter past @p tag. Throws std::invalid_argument when @p tag is
     * already live.
     */
    const Wme *insertWithTag(SymbolId cls, TimeTag tag,
                             std::vector<Value> fields);

    /**
     * Retracts @p wme.
     * @return false when the element was not live (already removed).
     */
    bool remove(const Wme *wme);

    /** Finds a live element with the given time tag, or nullptr. */
    const Wme *findByTag(TimeTag tag) const;

    /** All live elements in insertion order. */
    std::vector<const Wme *> liveElements() const;

    std::size_t liveCount() const { return live_.size(); }
    TimeTag nextTag() const { return next_tag_; }

    /** Advances the tag counter to at least @p tag (never backwards);
     *  restore paths use this to resume stamping where a crashed
     *  process left off. */
    void
    setNextTag(TimeTag tag)
    {
        if (tag > next_tag_)
            next_tag_ = tag;
    }

    /** Destroys retracted elements parked since the last collection. */
    void collectGarbage();

  private:
    TimeTag next_tag_ = 1;
    std::unordered_map<TimeTag, std::unique_ptr<Wme>> live_;
    std::vector<std::unique_ptr<Wme>> retired_;
};

} // namespace psm::ops5

#endif // PSM_OPS5_WME_HPP
