/**
 * @file
 * Tagged scalar values and match predicates.
 *
 * OPS5 working-memory attribute values are symbols, integers, or
 * floating-point numbers. A Value is a small tagged scalar; equality
 * is exact for symbols and numeric (with int/float promotion) for
 * numbers, matching OPS5 semantics.
 */

#ifndef PSM_OPS5_VALUE_HPP
#define PSM_OPS5_VALUE_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "symbol.hpp"

namespace psm::ops5 {

/** Discriminator for Value. */
enum class ValueKind : std::uint8_t {
    Nil,     ///< absent attribute (matches like the symbol "nil")
    Symbol,  ///< interned symbolic constant
    Int,     ///< 64-bit signed integer
    Float,   ///< double-precision float
};

/**
 * A small tagged scalar: nil, interned symbol, integer, or float.
 *
 * Values are trivially copyable 16-byte objects; they are stored by
 * value in WMEs and compared billions of times during match, so there
 * is deliberately no heap indirection here.
 */
class Value
{
  public:
    /** Constructs nil. */
    constexpr Value() : kind_(ValueKind::Nil), int_(0) {}

    static constexpr Value
    symbol(SymbolId id)
    {
        Value v;
        // "nil" the symbol and nil the absent value unify, as in OPS5.
        if (id == kNilSymbol)
            return v;
        v.kind_ = ValueKind::Symbol;
        v.sym_ = id;
        return v;
    }

    static constexpr Value
    integer(std::int64_t i)
    {
        Value v;
        v.kind_ = ValueKind::Int;
        v.int_ = i;
        return v;
    }

    static constexpr Value
    real(double f)
    {
        Value v;
        v.kind_ = ValueKind::Float;
        v.float_ = f;
        return v;
    }

    constexpr ValueKind kind() const { return kind_; }
    constexpr bool isNil() const { return kind_ == ValueKind::Nil; }
    constexpr bool isSymbol() const { return kind_ == ValueKind::Symbol; }

    constexpr bool
    isNumeric() const
    {
        return kind_ == ValueKind::Int || kind_ == ValueKind::Float;
    }

    /** @pre isSymbol() or isNil(); nil reads as kNilSymbol. */
    constexpr SymbolId
    asSymbol() const
    {
        return kind_ == ValueKind::Symbol ? sym_ : kNilSymbol;
    }

    /** Numeric view with int->double promotion. @pre isNumeric(). */
    constexpr double
    asDouble() const
    {
        return kind_ == ValueKind::Int ? static_cast<double>(int_) : float_;
    }

    /** @pre kind() == ValueKind::Int. */
    constexpr std::int64_t asInt() const { return int_; }

    /** OPS5 equality: symbols by id, numbers numerically. */
    constexpr bool
    operator==(const Value &o) const
    {
        if (isNumeric() && o.isNumeric()) {
            if (kind_ == ValueKind::Int && o.kind_ == ValueKind::Int)
                return int_ == o.int_;
            return asDouble() == o.asDouble();
        }
        if (kind_ != o.kind_)
            return false;
        switch (kind_) {
          case ValueKind::Nil:
            return true;
          case ValueKind::Symbol:
            return sym_ == o.sym_;
          default:
            return false; // unreachable; numerics handled above
        }
    }

    constexpr bool operator!=(const Value &o) const { return !(*this == o); }

    /** Hash consistent with operator== (ints and equal floats collide). */
    std::size_t
    hash() const
    {
        switch (kind_) {
          case ValueKind::Nil:
            return 0x9e3779b9;
          case ValueKind::Symbol:
            return std::hash<std::uint32_t>()(sym_) ^ 0x517cc1b7;
          default:
            return std::hash<double>()(asDouble());
        }
    }

    /** Human-readable rendering, resolving symbols through @p syms. */
    std::string toString(const SymbolTable &syms) const;

  private:
    ValueKind kind_;
    union {
        std::int64_t int_;
        double float_;
        SymbolId sym_;
    };
};

static_assert(sizeof(Value) <= 16, "Value must stay a small scalar");

/** Match predicates usable in condition-element value positions. */
enum class Predicate : std::uint8_t {
    Eq,        ///< =   (also the implicit predicate of a bare constant)
    Ne,        ///< <>
    Lt,        ///< <
    Le,        ///< <=
    Gt,        ///< >
    Ge,        ///< >=
    SameType,  ///< <=> (same value kind)
};

/** Spelling of a predicate as it appears in OPS5 source. */
const char *predicateName(Predicate p);

/**
 * Evaluates `lhs pred rhs` with OPS5 coercion rules.
 *
 * Relational predicates require two numbers or two symbols; symbols
 * compare lexicographically through @p syms. A relational predicate
 * applied across kinds is simply false (OPS5 treats it as a failed
 * match rather than an error during match).
 */
bool evalPredicate(Predicate pred, const Value &lhs, const Value &rhs,
                   const SymbolTable &syms);

} // namespace psm::ops5

#endif // PSM_OPS5_VALUE_HPP
