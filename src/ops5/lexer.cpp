#include "lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace psm::ops5 {

ParseError::ParseError(const std::string &msg, int line, int col)
    : std::runtime_error(msg + " (line " + std::to_string(line) +
                         ", col " + std::to_string(col) + ")"),
      line_(line), col_(col)
{}

namespace {

/** Character classifier: ends an atom / variable name. */
bool
isDelimiter(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
           c == ')' || c == '{' || c == '}' || c == '^' || c == ';';
}

/** Scanner state over the source text. */
class Scanner
{
  public:
    explicit Scanner(std::string_view src) : src_(src) {}

    bool atEnd() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    int line() const { return line_; }
    int col() const { return col_; }

  private:
    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

/** True when @p text parses fully as an integer or float literal. */
bool
classifyNumber(const std::string &text, Token &tok)
{
    if (text.empty())
        return false;
    const char *begin = text.c_str();
    char *end = nullptr;
    long long iv = std::strtoll(begin, &end, 10);
    if (end == begin + text.size()) {
        tok.kind = TokenKind::Int;
        tok.int_val = iv;
        return true;
    }
    double fv = std::strtod(begin, &end);
    if (end == begin + text.size()) {
        tok.kind = TokenKind::Float;
        tok.float_val = fv;
        return true;
    }
    return false;
}

} // namespace

std::vector<Token>
tokenize(std::string_view source)
{
    std::vector<Token> out;
    Scanner s(source);

    auto push = [&](TokenKind kind, int line, int col) -> Token & {
        Token tok;
        tok.kind = kind;
        tok.line = line;
        tok.col = col;
        out.push_back(std::move(tok));
        return out.back();
    };

    while (!s.atEnd()) {
        char c = s.peek();
        int line = s.line(), col = s.col();

        if (std::isspace(static_cast<unsigned char>(c))) {
            s.advance();
            continue;
        }
        if (c == ';') { // comment to end of line
            while (!s.atEnd() && s.peek() != '\n')
                s.advance();
            continue;
        }
        if (c == '(') { s.advance(); push(TokenKind::LParen, line, col); continue; }
        if (c == ')') { s.advance(); push(TokenKind::RParen, line, col); continue; }
        if (c == '{') { s.advance(); push(TokenKind::LBrace, line, col); continue; }
        if (c == '}') { s.advance(); push(TokenKind::RBrace, line, col); continue; }
        if (c == '^') { s.advance(); push(TokenKind::Hat, line, col); continue; }

        if (c == '=') {
            s.advance();
            push(TokenKind::Pred, line, col).pred = Predicate::Eq;
            continue;
        }

        if (c == '<') {
            // One of: <=> <= <> << <var> or bare `<`.
            if (s.peek(1) == '=' && s.peek(2) == '>') {
                s.advance(); s.advance(); s.advance();
                push(TokenKind::Pred, line, col).pred = Predicate::SameType;
                continue;
            }
            if (s.peek(1) == '=') {
                s.advance(); s.advance();
                push(TokenKind::Pred, line, col).pred = Predicate::Le;
                continue;
            }
            if (s.peek(1) == '>') {
                s.advance(); s.advance();
                push(TokenKind::Pred, line, col).pred = Predicate::Ne;
                continue;
            }
            if (s.peek(1) == '<') {
                s.advance(); s.advance();
                push(TokenKind::LDisj, line, col);
                continue;
            }
            // Try `<name>`: identifier chars then `>`.
            std::size_t k = 1;
            while (!isDelimiter(s.peek(k)) && s.peek(k) != '>' &&
                   s.peek(k) != '<' && s.peek(k) != '\0') {
                ++k;
            }
            if (k > 1 && s.peek(k) == '>') {
                std::string name;
                for (std::size_t i = 0; i <= k; ++i)
                    name.push_back(s.advance());
                push(TokenKind::Var, line, col).text = std::move(name);
                continue;
            }
            s.advance();
            push(TokenKind::Pred, line, col).pred = Predicate::Lt;
            continue;
        }

        if (c == '>') {
            if (s.peek(1) == '=') {
                s.advance(); s.advance();
                push(TokenKind::Pred, line, col).pred = Predicate::Ge;
                continue;
            }
            if (s.peek(1) == '>') {
                s.advance(); s.advance();
                push(TokenKind::RDisj, line, col);
                continue;
            }
            s.advance();
            push(TokenKind::Pred, line, col).pred = Predicate::Gt;
            continue;
        }

        if (c == '-') {
            // `-->` arrow, `-(` negation, or a negative number / atom.
            if (s.peek(1) == '-' && s.peek(2) == '>') {
                s.advance(); s.advance(); s.advance();
                push(TokenKind::Arrow, line, col);
                continue;
            }
            if (s.peek(1) == '(') {
                s.advance();
                push(TokenKind::Minus, line, col);
                continue;
            }
            // fall through to atom/number scanning below
        }

        // Atom or number: scan to the next delimiter.
        std::string text;
        while (!s.atEnd() && !isDelimiter(s.peek()))
            text.push_back(s.advance());
        if (text.empty())
            throw ParseError("unexpected character '" +
                             std::string(1, c) + "'", line, col);
        Token tok;
        tok.line = line;
        tok.col = col;
        if (!classifyNumber(text, tok)) {
            tok.kind = TokenKind::Atom;
            tok.text = std::move(text);
        }
        out.push_back(std::move(tok));
    }

    push(TokenKind::End, s.line(), s.col());
    return out;
}

} // namespace psm::ops5
