#include "value.hpp"

#include <sstream>

namespace psm::ops5 {

std::string
Value::toString(const SymbolTable &syms) const
{
    switch (kind_) {
      case ValueKind::Nil:
        return "nil";
      case ValueKind::Symbol:
        return syms.name(sym_);
      case ValueKind::Int:
        return std::to_string(int_);
      case ValueKind::Float: {
        std::ostringstream os;
        os << float_;
        return os.str();
      }
    }
    return "?";
}

const char *
predicateName(Predicate p)
{
    switch (p) {
      case Predicate::Eq: return "=";
      case Predicate::Ne: return "<>";
      case Predicate::Lt: return "<";
      case Predicate::Le: return "<=";
      case Predicate::Gt: return ">";
      case Predicate::Ge: return ">=";
      case Predicate::SameType: return "<=>";
    }
    return "?";
}

namespace {

/**
 * Three-way comparison for relational predicates.
 * @return -1/0/+1, or 2 when the operands are not comparable.
 */
int
compareValues(const Value &lhs, const Value &rhs, const SymbolTable &syms)
{
    if (lhs.isNumeric() && rhs.isNumeric()) {
        double a = lhs.asDouble(), b = rhs.asDouble();
        return a < b ? -1 : a > b ? 1 : 0;
    }
    if (lhs.isSymbol() && rhs.isSymbol()) {
        int c = syms.compare(lhs.asSymbol(), rhs.asSymbol());
        return c < 0 ? -1 : c > 0 ? 1 : 0;
    }
    return 2;
}

} // namespace

bool
evalPredicate(Predicate pred, const Value &lhs, const Value &rhs,
              const SymbolTable &syms)
{
    switch (pred) {
      case Predicate::Eq:
        return lhs == rhs;
      case Predicate::Ne:
        return lhs != rhs;
      case Predicate::SameType:
        return (lhs.isNumeric() && rhs.isNumeric()) ||
               lhs.kind() == rhs.kind();
      default:
        break;
    }
    int c = compareValues(lhs, rhs, syms);
    if (c == 2)
        return false;
    switch (pred) {
      case Predicate::Lt: return c < 0;
      case Predicate::Le: return c <= 0;
      case Predicate::Gt: return c > 0;
      case Predicate::Ge: return c >= 0;
      default: return false;
    }
}

} // namespace psm::ops5
