/**
 * @file
 * Recursive-descent parser producing compiled Programs from OPS5
 * source text.
 *
 * Accepted top-level forms:
 *
 *     (literalize class attr1 attr2 ...)
 *     (p name ce+ --> action*)
 *     (make class ^attr value ...)        ; initial working memory
 *     (strategy lex|mea)
 *
 * Condition elements support constants, variables, all OPS5
 * predicates, `{ ... }` conjunctions, `<< ... >>` disjunctions, and
 * `-` negation. Actions: make, remove, modify, bind, write, halt.
 */

#ifndef PSM_OPS5_PARSER_HPP
#define PSM_OPS5_PARSER_HPP

#include <memory>
#include <string_view>

#include "lexer.hpp"
#include "production.hpp"

namespace psm::ops5 {

/** Conflict-resolution strategy selected by a (strategy ...) form. */
enum class StrategyKind : std::uint8_t { Lex, Mea };

/** A parsed program plus source-level options. */
struct ParsedProgram
{
    std::shared_ptr<Program> program;
    StrategyKind strategy = StrategyKind::Lex;
};

/**
 * Parses complete OPS5 source text.
 * @throws ParseError on any lexical or syntactic problem, including
 *         semantic checks the OPS5 compiler performs (first condition
 *         element must be positive; a variable may not be constrained
 *         by a non-equality predicate before it is bound; remove /
 *         modify indices must name positive condition elements).
 */
ParsedProgram parseProgram(std::string_view source);

/** Convenience: parse and return just the Program. */
std::shared_ptr<Program> parse(std::string_view source);

} // namespace psm::ops5

#endif // PSM_OPS5_PARSER_HPP
