/**
 * @file
 * Condition elements: the compiled form of a production's left-hand
 * side patterns.
 *
 * A ConditionElement is a partial description of a WME: a class name
 * plus per-field test lists. Each test compares the field against a
 * constant, a constant set (OPS5 `<< .. >>` disjunction), or a
 * variable occurrence. Variable consistency across fields and across
 * condition elements is what the Rete two-input nodes enforce.
 */

#ifndef PSM_OPS5_CONDITION_HPP
#define PSM_OPS5_CONDITION_HPP

#include <string>
#include <vector>

#include "source_loc.hpp"
#include "value.hpp"
#include "wme.hpp"

namespace psm::ops5 {

/** What a test's right operand is. */
enum class OperandKind : std::uint8_t {
    Constant,     ///< compare against a literal Value
    ConstantSet,  ///< membership in a literal set (only with Eq/Ne)
    Variable,     ///< compare against a bound variable's value
};

/**
 * One atomic test on one field of a condition element.
 *
 * Variables are identified by their interned symbol (e.g. "<x>").
 * The *first* textual occurrence of a variable in a production's LHS
 * binds it; every further occurrence, including this test when
 * `operand == Variable`, constrains it via `pred`.
 */
struct AtomicTest
{
    Predicate pred = Predicate::Eq;
    OperandKind operand = OperandKind::Constant;
    Value constant{};               ///< valid when operand == Constant
    std::vector<Value> set;         ///< valid when operand == ConstantSet
    SymbolId var = kNilSymbol;      ///< valid when operand == Variable
    SourceLoc loc{};                ///< not part of operator==

    static AtomicTest
    constant_eq(Value v)
    {
        AtomicTest t;
        t.constant = v;
        return t;
    }

    static AtomicTest
    variable(SymbolId v, Predicate p = Predicate::Eq)
    {
        AtomicTest t;
        t.pred = p;
        t.operand = OperandKind::Variable;
        t.var = v;
        return t;
    }

    bool operator==(const AtomicTest &o) const;
};

/** All tests applied to one field of a condition element. */
struct FieldTests
{
    int field = 0;                  ///< field index within the class
    std::vector<AtomicTest> tests;  ///< conjunction (OPS5 `{ ... }`)
};

/**
 * A compiled condition element.
 *
 * `negated` marks OPS5 `-` (absence) elements. Field test lists are
 * kept sorted by field index so structurally identical CEs compare
 * equal, which the Rete compiler exploits for node sharing.
 */
struct ConditionElement
{
    SymbolId cls = kNilSymbol;
    bool negated = false;
    std::vector<FieldTests> fields;
    SourceLoc loc{};                ///< position of the CE's '('

    /** Adds @p test to the list for @p field (kept sorted). */
    void addTest(int field, AtomicTest test);

    /**
     * Does @p wme satisfy every constant test of this CE?
     * Variable tests are ignored here; they need binding context.
     */
    bool matchesConstants(const Wme &wme, const SymbolTable &syms) const;

    /** Total number of atomic tests (the OPS5 specificity measure). */
    int testCount() const;

    std::string toString(const SymbolTable &syms,
                         const TypeRegistry &reg) const;
};

/**
 * The location of one variable occurrence inside an LHS:
 * condition-element index and field index.
 */
struct VarLocation
{
    int ce = 0;
    int field = 0;

    bool
    operator==(const VarLocation &o) const
    {
        return ce == o.ce && field == o.field;
    }
};

/**
 * Binding table for a production's LHS: for each distinct variable,
 * its first (defining) occurrence in a *non-negated* CE.
 *
 * Built left-to-right by the parser/compiler. Occurrences after the
 * defining one become consistency tests (intra-CE or join tests).
 */
class VariableBindings
{
  public:
    /**
     * Records that @p var occurs at @p loc.
     * @return true if this was the defining occurrence.
     */
    bool define(SymbolId var, VarLocation loc);

    /** Defining location, or nullptr when @p var was never bound. */
    const VarLocation *find(SymbolId var) const;

    std::size_t size() const { return vars_.size(); }

  private:
    std::vector<std::pair<SymbolId, VarLocation>> vars_;
};

} // namespace psm::ops5

#endif // PSM_OPS5_CONDITION_HPP
