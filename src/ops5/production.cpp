#include "production.hpp"

#include <algorithm>

namespace psm::ops5 {

int
Production::positiveCeCount() const
{
    return static_cast<int>(
        std::count_if(lhs_.begin(), lhs_.end(),
                      [](const ConditionElement &ce) {
                          return !ce.negated;
                      }));
}

int
Production::specificity() const
{
    int n = 0;
    for (const ConditionElement &ce : lhs_)
        n += ce.testCount();
    return n;
}

Production &
Program::addProduction(std::string name)
{
    int id = static_cast<int>(productions_.size());
    productions_.push_back(
        std::make_unique<Production>(std::move(name), id));
    return *productions_.back();
}

const Production *
Program::findProduction(std::string_view name) const
{
    for (const auto &p : productions_) {
        if (p->name() == name)
            return p.get();
    }
    return nullptr;
}

} // namespace psm::ops5
