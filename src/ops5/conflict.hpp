/**
 * @file
 * Conflict set, instantiations, and the LEX / MEA conflict-resolution
 * strategies with refraction.
 *
 * The conflict set is the output of the match phase: one
 * Instantiation per (production, WME tuple) whose LHS is satisfied.
 * Because the parallel matcher's terminal-node activations may deliver
 * a removal before the matching insertion (conjugate activation races,
 * Section 5 of the paper), the conflict set absorbs out-of-order pairs
 * with anti-token tombstones: a removal that finds nothing parks a
 * tombstone that annihilates the late insertion.
 */

#ifndef PSM_OPS5_CONFLICT_HPP
#define PSM_OPS5_CONFLICT_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/annotations.hpp"
#include "production.hpp"

namespace psm::ops5 {

/**
 * A satisfied production: the production plus the WMEs matched by its
 * positive condition elements, in LHS order.
 */
struct Instantiation
{
    const Production *production = nullptr;
    std::vector<const Wme *> wmes;

    /**
     * Cached LEX recency key (descending time tags); filled by
     * cacheSortedTags(). The conflict set fills it on insertion so
     * conflict resolution compares without recomputing/allocating —
     * select() is called every recognize-act cycle over the whole set.
     */
    std::vector<TimeTag> sorted_tags;

    /** Fills sorted_tags if not already cached. */
    void cacheSortedTags();

    /** Time tags sorted descending (cached or computed). */
    std::vector<TimeTag> sortedTags() const;

    std::string toString(const SymbolTable &syms) const;
};

/** Hashable identity of an instantiation. */
struct InstantiationKey
{
    int production_id = -1;
    std::vector<TimeTag> tags; ///< in positive-CE order (not sorted)

    static InstantiationKey of(const Instantiation &inst);

    bool
    operator==(const InstantiationKey &o) const
    {
        return production_id == o.production_id && tags == o.tags;
    }
};

struct InstantiationKeyHash
{
    std::size_t
    operator()(const InstantiationKey &k) const
    {
        std::size_t h = std::hash<int>()(k.production_id);
        for (TimeTag t : k.tags)
            h = h * 0x9e3779b97f4a7c15ULL + std::hash<TimeTag>()(t);
        return h;
    }
};

/** Conflict-resolution strategy (OPS5 `lex` / `mea`). */
enum class Strategy : std::uint8_t { Lex, Mea };

/**
 * Three-way LEX order: positive when @p a dominates @p b.
 * Recency of sorted time tags, then specificity, then a deterministic
 * arbitrary tiebreak (production id, then tag vector).
 */
int compareLex(const Instantiation &a, const Instantiation &b);

/** Three-way MEA order: first-CE recency first, then LEX. */
int compareMea(const Instantiation &a, const Instantiation &b);

/**
 * The conflict set.
 *
 * All mutating entry points take an internal mutex so the parallel
 * matcher's terminal activations can call insert/remove directly; the
 * serial matcher pays one uncontended lock per conflict-set change,
 * which is noise next to the match itself.
 */
class ConflictSet
{
  public:
    /** Adds an instantiation (or annihilates a parked tombstone). */
    void insert(Instantiation inst);

    /**
     * Removes the instantiation with @p key; if it is not present,
     * parks a tombstone that will annihilate the late insert.
     */
    void remove(const InstantiationKey &key);

    /** Convenience removal from production + wme tuple. */
    void remove(const Instantiation &inst);

    /**
     * Picks the dominant unfired instantiation under @p strategy, or
     * nullopt when the set is empty / everything already fired
     * (refraction). Does not mark anything fired.
     */
    std::optional<Instantiation> select(Strategy strategy) const;

    /** Records that @p inst fired, so refraction suppresses it. */
    void markFired(const Instantiation &inst);

    /** Restore-path variant of markFired(): re-marks a key recovered
     *  from a snapshot or WAL record so refraction survives restart. */
    void markFiredKey(InstantiationKey key);

    /** Keys currently suppressed by refraction (snapshot capture). */
    std::vector<InstantiationKey> firedKeys() const;

    /**
     * Removes every live instantiation for which @p pred is true and
     * returns how many were removed. TREAT's delete path uses this:
     * retracting a WME simply sweeps the conflict set.
     */
    template <typename Pred>
    std::size_t
    removeIf(Pred pred) PSM_EXCLUDES(mutex_)
    {
        core::MutexLock lock(mutex_);
        std::size_t removed = 0;
        for (auto it = live_.begin(); it != live_.end();) {
            if (pred(it->second)) {
                fired_.erase(it->first);
                it = live_.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
        return removed;
    }

    /** True when an instantiation with @p key is live. */
    bool contains(const InstantiationKey &key) const;

    /** Live instantiations (snapshot, unordered). */
    std::vector<Instantiation> contents() const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** Number of parked tombstones; must be zero at cycle barriers. */
    std::size_t pendingTombstones() const;

    /**
     * Discards parked tombstones. Called at every cycle barrier: any
     * tombstone still parked once the batch reached fixpoint was a
     * spurious removal from a conjugate-pair race whose insertion was
     * never produced, and must not leak into later cycles.
     */
    void clearTombstones();

    void clear();

  private:
    using Map = std::unordered_map<InstantiationKey, Instantiation,
                                   InstantiationKeyHash>;
    using KeySet =
        std::unordered_set<InstantiationKey, InstantiationKeyHash>;

    mutable core::Mutex mutex_;
    Map live_ PSM_GUARDED_BY(mutex_);
    KeySet tombstones_ PSM_GUARDED_BY(mutex_);
    KeySet fired_ PSM_GUARDED_BY(mutex_);
};

} // namespace psm::ops5

#endif // PSM_OPS5_CONFLICT_HPP
