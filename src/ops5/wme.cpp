#include "wme.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psm::ops5 {

int
ClassSchema::fieldOf(SymbolId attr)
{
    auto it = index_.find(attr);
    if (it != index_.end())
        return it->second;
    int idx = static_cast<int>(attrs_.size());
    attrs_.push_back(attr);
    index_.emplace(attr, idx);
    return idx;
}

int
ClassSchema::findField(SymbolId attr) const
{
    auto it = index_.find(attr);
    return it == index_.end() ? -1 : it->second;
}

ClassSchema &
TypeRegistry::schema(SymbolId cls)
{
    auto it = schemas_.find(cls);
    if (it == schemas_.end())
        it = schemas_.emplace(cls, std::make_unique<ClassSchema>(cls)).first;
    return *it->second;
}

const ClassSchema *
TypeRegistry::findSchema(SymbolId cls) const
{
    auto it = schemas_.find(cls);
    return it == schemas_.end() ? nullptr : it->second.get();
}

bool
Wme::sameContents(const Wme &o) const
{
    if (cls_ != o.cls_)
        return false;
    int n = std::max(fieldCount(), o.fieldCount());
    for (int i = 0; i < n; ++i) {
        if (field(i) != o.field(i))
            return false;
    }
    return true;
}

std::string
Wme::toString(const SymbolTable &syms, const TypeRegistry &reg) const
{
    std::ostringstream os;
    os << "(" << syms.name(cls_);
    const ClassSchema *schema = reg.findSchema(cls_);
    for (int i = 0; i < fieldCount(); ++i) {
        if (fields_[i].isNil())
            continue;
        os << " ^";
        if (schema && i < schema->fieldCount())
            os << syms.name(schema->attributeAt(i));
        else
            os << i;
        os << " " << fields_[i].toString(syms);
    }
    os << ")";
    return os.str();
}

const Wme *
WorkingMemory::insert(SymbolId cls, std::vector<Value> fields)
{
    TimeTag tag = next_tag_++;
    auto wme = std::make_unique<Wme>(cls, tag, std::move(fields));
    const Wme *raw = wme.get();
    live_.emplace(tag, std::move(wme));
    return raw;
}

const Wme *
WorkingMemory::insertWithTag(SymbolId cls, TimeTag tag,
                             std::vector<Value> fields)
{
    auto wme = std::make_unique<Wme>(cls, tag, std::move(fields));
    const Wme *raw = wme.get();
    auto [it, inserted] = live_.emplace(tag, std::move(wme));
    if (!inserted)
        throw std::invalid_argument(
            "WorkingMemory::insertWithTag: time tag " +
            std::to_string(tag) + " is already live");
    if (tag >= next_tag_)
        next_tag_ = tag + 1;
    return raw;
}

bool
WorkingMemory::remove(const Wme *wme)
{
    auto it = live_.find(wme->timeTag());
    if (it == live_.end() || it->second.get() != wme)
        return false;
    retired_.push_back(std::move(it->second));
    live_.erase(it);
    return true;
}

const Wme *
WorkingMemory::findByTag(TimeTag tag) const
{
    auto it = live_.find(tag);
    return it == live_.end() ? nullptr : it->second.get();
}

std::vector<const Wme *>
WorkingMemory::liveElements() const
{
    std::vector<const Wme *> out;
    out.reserve(live_.size());
    for (const auto &[tag, wme] : live_)
        out.push_back(wme.get());
    std::sort(out.begin(), out.end(),
              [](const Wme *a, const Wme *b) {
                  return a->timeTag() < b->timeTag();
              });
    return out;
}

void
WorkingMemory::collectGarbage()
{
    retired_.clear();
}

} // namespace psm::ops5
