/**
 * @file
 * Tokenizer for the OPS5 surface syntax.
 *
 * Handles the quirky lexical forms of OPS5: `^attr` operators,
 * variables written `<x>`, the predicate family `= <> < <= > >= <=>`,
 * disjunction brackets `<< ... >>`, conjunction braces `{ ... }`, the
 * rule arrow `-->`, and `;` comments.
 */

#ifndef PSM_OPS5_LEXER_HPP
#define PSM_OPS5_LEXER_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "value.hpp"

namespace psm::ops5 {

/** Kinds of lexical tokens. */
enum class TokenKind : std::uint8_t {
    LParen, RParen,
    LBrace, RBrace,
    LDisj, RDisj,      ///< `<<` and `>>`
    Hat,               ///< `^`
    Arrow,             ///< `-->`
    Minus,             ///< `-` immediately before `(` (CE negation)
    Atom,              ///< bare symbol
    Int, Float,
    Var,               ///< `<name>`
    Pred,              ///< one of = <> < <= > >= <=>
    End,
};

/** One token with position information for error reporting. */
struct Token
{
    TokenKind kind = TokenKind::End;
    std::string text;        ///< atom / variable spelling
    std::int64_t int_val = 0;
    double float_val = 0.0;
    Predicate pred = Predicate::Eq;
    int line = 0;
    int col = 0;
};

/** Error thrown on malformed OPS5 source. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &msg, int line, int col);

    int line() const { return line_; }
    int col() const { return col_; }

  private:
    int line_;
    int col_;
};

/** Tokenizes @p source completely, appending a trailing End token. */
std::vector<Token> tokenize(std::string_view source);

} // namespace psm::ops5

#endif // PSM_OPS5_LEXER_HPP
