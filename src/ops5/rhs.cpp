#include "rhs.hpp"

#include <functional>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace psm::ops5 {

namespace {

/**
 * Evaluates one (compute ...) node with OPS5 numeric rules: integer
 * arithmetic when both operands are integers (// is then integer
 * division), double otherwise. Non-numeric operands make the whole
 * expression nil, matching OPS5's lenient runtime.
 */
Value
evalCompute(const ComputeNode &node,
            const std::function<Value(const RhsTerm &)> &eval)
{
    Value a = eval(node.lhs);
    Value b = eval(node.rhs);
    if (!a.isNumeric() || !b.isNumeric())
        return Value{};
    bool ints = a.kind() == ValueKind::Int && b.kind() == ValueKind::Int;
    if (ints) {
        std::int64_t x = a.asInt(), y = b.asInt();
        switch (node.op) {
          case ComputeOp::Add: return Value::integer(x + y);
          case ComputeOp::Sub: return Value::integer(x - y);
          case ComputeOp::Mul: return Value::integer(x * y);
          case ComputeOp::Div:
            return y == 0 ? Value{} : Value::integer(x / y);
          case ComputeOp::Mod:
            return y == 0 ? Value{} : Value::integer(x % y);
        }
    }
    double x = a.asDouble(), y = b.asDouble();
    switch (node.op) {
      case ComputeOp::Add: return Value::real(x + y);
      case ComputeOp::Sub: return Value::real(x - y);
      case ComputeOp::Mul: return Value::real(x * y);
      case ComputeOp::Div:
        return y == 0.0 ? Value{} : Value::real(x / y);
      case ComputeOp::Mod:
        return Value{}; // modulus is integer-only in OPS5
    }
    return Value{};
}

} // namespace

int
positiveOrdinal(const Production &p, int ce_index)
{
    if (ce_index < 1 || ce_index > static_cast<int>(p.lhs().size()))
        return -1;
    if (p.lhs()[ce_index - 1].negated)
        return -1;
    int ordinal = 0;
    for (int i = 0; i < ce_index - 1; ++i) {
        if (!p.lhs()[i].negated)
            ++ordinal;
    }
    return ordinal;
}

FiringResult
RhsExecutor::fire(const Instantiation &inst)
{
    const Production &p = *inst.production;
    FiringResult result;
    std::unordered_map<SymbolId, Value> local_binds;

    // Value of an LHS-bound or RHS-bound variable.
    auto var_value = [&](SymbolId var) -> Value {
        if (auto it = local_binds.find(var); it != local_binds.end())
            return it->second;
        const VarLocation *loc = p.bindings().find(var);
        if (!loc)
            throw std::logic_error("unbound RHS variable");
        int ordinal = positiveOrdinal(p, loc->ce + 1);
        return inst.wmes.at(ordinal)->field(loc->field);
    };

    std::function<Value(const RhsTerm &)> eval_term =
        [&](const RhsTerm &t) -> Value {
        switch (t.kind) {
          case RhsTermKind::Constant:
            return t.constant;
          case RhsTermKind::Variable:
            return var_value(t.var);
          case RhsTermKind::FieldCopy:
            return Value{}; // only reachable through Modify's base copy
          case RhsTermKind::Compute:
            return evalCompute(*t.compute, eval_term);
        }
        return Value{};
    };

    // WMEs this firing already retracted (a remove then a modify of
    // the same element must not double-retract).
    std::vector<const Wme *> retracted;
    auto already_retracted = [&](const Wme *w) {
        for (const Wme *r : retracted) {
            if (r == w)
                return true;
        }
        return false;
    };

    for (const Action &a : p.rhs()) {
        switch (a.kind) {
          case ActionKind::Make: {
            std::vector<Value> fields;
            for (const FieldAssign &fa : a.assigns) {
                if (fa.field >= static_cast<int>(fields.size()))
                    fields.resize(fa.field + 1);
                fields[fa.field] = eval_term(fa.term);
            }
            const Wme *wme = wm_.insert(a.cls, std::move(fields));
            result.changes.push_back({ChangeKind::Insert, wme});
            break;
          }
          case ActionKind::Remove: {
            int ordinal = positiveOrdinal(p, a.ce);
            const Wme *victim = inst.wmes.at(ordinal);
            if (already_retracted(victim))
                break;
            if (wm_.remove(victim)) {
                retracted.push_back(victim);
                result.changes.push_back({ChangeKind::Remove, victim});
            }
            break;
          }
          case ActionKind::Modify: {
            int ordinal = positiveOrdinal(p, a.ce);
            const Wme *old = inst.wmes.at(ordinal);
            if (already_retracted(old))
                break;
            std::vector<Value> fields;
            fields.reserve(old->fieldCount());
            for (int i = 0; i < old->fieldCount(); ++i)
                fields.push_back(old->field(i));
            for (const FieldAssign &fa : a.assigns) {
                if (fa.field >= static_cast<int>(fields.size()))
                    fields.resize(fa.field + 1);
                fields[fa.field] = eval_term(fa.term);
            }
            if (wm_.remove(old)) {
                retracted.push_back(old);
                result.changes.push_back({ChangeKind::Remove, old});
            }
            const Wme *wme = wm_.insert(old->className(),
                                        std::move(fields));
            result.changes.push_back({ChangeKind::Insert, wme});
            break;
          }
          case ActionKind::Bind:
            local_binds[a.var] = eval_term(a.terms.at(0));
            break;
          case ActionKind::Write:
            if (out_) {
                for (std::size_t i = 0; i < a.terms.size(); ++i) {
                    if (i)
                        *out_ << " ";
                    *out_ << eval_term(a.terms[i])
                                 .toString(program_.symbols());
                }
                *out_ << "\n";
            }
            break;
          case ActionKind::Halt:
            result.halted = true;
            break;
        }
    }
    return result;
}

} // namespace psm::ops5
