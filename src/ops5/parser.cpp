#include "parser.hpp"

#include <functional>
#include <optional>
#include <unordered_set>

namespace psm::ops5 {

namespace {

/** Recursive-descent parser over a token stream. */
class Parser
{
  public:
    explicit Parser(std::string_view source)
        : tokens_(tokenize(source)),
          parsed_{std::make_shared<Program>(), StrategyKind::Lex}
    {}

    ParsedProgram
    run()
    {
        while (!check(TokenKind::End))
            parseForm();
        return std::move(parsed_);
    }

  private:
    Program &prog() { return *parsed_.program; }
    SymbolTable &syms() { return prog().symbols(); }

    // --- token helpers ---------------------------------------------------

    const Token &peek() const { return tokens_[pos_]; }
    bool check(TokenKind k) const { return peek().kind == k; }

    const Token &
    advance()
    {
        const Token &t = tokens_[pos_];
        if (t.kind != TokenKind::End)
            ++pos_;
        return t;
    }

    bool
    match(TokenKind k)
    {
        if (!check(k))
            return false;
        advance();
        return true;
    }

    const Token &
    expect(TokenKind k, const char *what)
    {
        if (!check(k))
            fail(std::string("expected ") + what);
        return advance();
    }

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError(msg, peek().line, peek().col);
    }

    std::string
    expectAtom(const char *what)
    {
        return expect(TokenKind::Atom, what).text;
    }

    // --- grammar ---------------------------------------------------------

    void
    parseForm()
    {
        expect(TokenKind::LParen, "'('");
        std::string head = expectAtom("form head");
        if (head == "literalize")
            parseLiteralize();
        else if (head == "p")
            parseProduction();
        else if (head == "make")
            parseTopLevelMake();
        else if (head == "strategy")
            parseStrategy();
        else if (head == "vector-attribute")
            parseVectorAttribute();
        else
            fail("unknown top-level form '" + head + "'");
    }

    void
    parseLiteralize()
    {
        SymbolId cls = syms().intern(expectAtom("class name"));
        ClassSchema &schema = prog().types().schema(cls);
        while (check(TokenKind::Atom))
            schema.fieldOf(syms().intern(advance().text));
        expect(TokenKind::RParen, "')'");
    }

    void
    parseVectorAttribute()
    {
        // (vector-attribute attr ...): each named attribute consumes
        // a sequence of values in WME-pattern positions. OPS5 declares
        // this globally per attribute name; classes using it should
        // literalize it last so the tail fields are free.
        if (!check(TokenKind::Atom))
            fail("vector-attribute needs at least one attribute name");
        while (check(TokenKind::Atom))
            prog().markVectorAttribute(syms().intern(advance().text));
        expect(TokenKind::RParen, "')'");
    }

    void
    parseStrategy()
    {
        std::string which = expectAtom("strategy name");
        if (which == "lex")
            parsed_.strategy = StrategyKind::Lex;
        else if (which == "mea")
            parsed_.strategy = StrategyKind::Mea;
        else
            fail("unknown strategy '" + which + "'");
        expect(TokenKind::RParen, "')'");
    }

    /** Parses a literal value token; variables are not allowed here. */
    Value
    parseLiteralValue()
    {
        const Token &t = advance();
        switch (t.kind) {
          case TokenKind::Atom:
            return Value::symbol(syms().intern(t.text));
          case TokenKind::Int:
            return Value::integer(t.int_val);
          case TokenKind::Float:
            return Value::real(t.float_val);
          default:
            fail("expected a constant value");
        }
    }

    void
    parseTopLevelMake()
    {
        SymbolId cls = syms().intern(expectAtom("class name"));
        ClassSchema &schema = prog().types().schema(cls);
        std::vector<Value> fields;
        int positional = 0;

        auto set_field = [&](int idx, Value v) {
            if (idx >= static_cast<int>(fields.size()))
                fields.resize(idx + 1);
            fields[idx] = v;
        };

        while (!check(TokenKind::RParen)) {
            if (match(TokenKind::Hat)) {
                SymbolId attr = syms().intern(expectAtom("attribute"));
                int base = schema.fieldOf(attr);
                if (prog().isVectorAttribute(attr)) {
                    int k = 0;
                    while (!check(TokenKind::RParen) &&
                           !check(TokenKind::Hat)) {
                        set_field(base + k++, parseLiteralValue());
                    }
                } else {
                    set_field(base, parseLiteralValue());
                }
            } else {
                set_field(positional++, parseLiteralValue());
            }
        }
        expect(TokenKind::RParen, "')'");
        prog().initialWmes().push_back({cls, std::move(fields)});
    }

    // --- productions -----------------------------------------------------

    void
    parseProduction()
    {
        const Token &name_tok = expect(TokenKind::Atom, "production name");
        std::string name = name_tok.text;
        SourceLoc name_loc{name_tok.line, name_tok.col};
        if (prog().findProduction(name))
            fail("duplicate production '" + name + "'");
        Production &p = prog().addProduction(name);
        p.setLoc(name_loc);

        while (!check(TokenKind::Arrow)) {
            bool negated = match(TokenKind::Minus);
            p.lhs().push_back(parseConditionElement(negated));
        }
        expect(TokenKind::Arrow, "'-->'");

        while (!check(TokenKind::RParen))
            p.rhs().push_back(parseAction(p));
        expect(TokenKind::RParen, "')'");

        analyzeProduction(p);
    }

    ConditionElement
    parseConditionElement(bool negated)
    {
        const Token &lp = expect(TokenKind::LParen,
                                 "'(' of condition element");
        ConditionElement ce;
        ce.loc = SourceLoc{lp.line, lp.col};
        ce.negated = negated;
        ce.cls = syms().intern(expectAtom("class name"));
        ClassSchema &schema = prog().types().schema(ce.cls);

        int positional = 0;
        while (!check(TokenKind::RParen)) {
            if (match(TokenKind::Hat)) {
                SymbolId attr = syms().intern(expectAtom("attribute"));
                int base = schema.fieldOf(attr);
                if (prog().isVectorAttribute(attr)) {
                    // A vector attribute matches a SEQUENCE of value
                    // positions starting at its own field.
                    int k = 0;
                    while (!check(TokenKind::RParen) &&
                           !check(TokenKind::Hat)) {
                        parseValueSpec(ce, base + k++);
                    }
                } else {
                    parseValueSpec(ce, base);
                }
            } else {
                parseValueSpec(ce, positional++);
            }
        }
        expect(TokenKind::RParen, "')'");
        return ce;
    }

    /** One value position: single test, `{...}`, or `<<...>>`. */
    void
    parseValueSpec(ConditionElement &ce, int field)
    {
        if (match(TokenKind::LBrace)) {
            if (check(TokenKind::RBrace))
                fail("empty '{ }' conjunction");
            while (!check(TokenKind::RBrace))
                ce.addTest(field, parseSingleTest());
            expect(TokenKind::RBrace, "'}'");
            return;
        }
        ce.addTest(field, parseSingleTest());
    }

    AtomicTest
    parseSingleTest()
    {
        SourceLoc loc{peek().line, peek().col};
        Predicate pred = Predicate::Eq;
        if (check(TokenKind::Pred))
            pred = advance().pred;

        if (match(TokenKind::LDisj)) {
            if (pred != Predicate::Eq && pred != Predicate::Ne)
                fail("'<< >>' only combines with = or <>");
            AtomicTest t;
            t.pred = pred;
            t.operand = OperandKind::ConstantSet;
            t.loc = loc;
            while (!check(TokenKind::RDisj))
                t.set.push_back(parseLiteralValue());
            expect(TokenKind::RDisj, "'>>'");
            if (t.set.empty())
                fail("empty '<< >>' disjunction");
            return t;
        }

        const Token &t = peek();
        switch (t.kind) {
          case TokenKind::Var: {
            advance();
            AtomicTest test =
                AtomicTest::variable(syms().intern(t.text), pred);
            test.loc = loc;
            return test;
          }
          case TokenKind::Atom:
          case TokenKind::Int:
          case TokenKind::Float: {
            AtomicTest test;
            test.pred = pred;
            test.constant = parseLiteralValue();
            test.loc = loc;
            return test;
          }
          default:
            fail("expected a value, variable, or '<< >>' set");
        }
    }

    // --- actions ----------------------------------------------------------

    RhsTerm
    parseRhsTerm()
    {
        if (check(TokenKind::Var)) {
            const Token &t = advance();
            return RhsTerm::variable(syms().intern(t.text));
        }
        if (check(TokenKind::LParen)) {
            advance();
            std::string head = expectAtom("(compute ...)");
            if (head != "compute")
                fail("only (compute ...) may appear as an RHS value");
            RhsTerm t = parseComputeExpr();
            expect(TokenKind::RParen, "')' after compute");
            return t;
        }
        return RhsTerm::literal(parseLiteralValue());
    }

    /** One operand of a compute expression. */
    RhsTerm
    parseComputeOperand()
    {
        if (check(TokenKind::Var)) {
            const Token &t = advance();
            return RhsTerm::variable(syms().intern(t.text));
        }
        if (match(TokenKind::LParen)) {
            RhsTerm t = parseComputeExpr();
            expect(TokenKind::RParen, "')'");
            return t;
        }
        return RhsTerm::literal(parseLiteralValue());
    }

    /** Maps an operator atom to a ComputeOp; nullopt when not one. */
    std::optional<ComputeOp>
    computeOp() const
    {
        if (!check(TokenKind::Atom))
            return std::nullopt;
        const std::string &s = peek().text;
        if (s == "+")
            return ComputeOp::Add;
        if (s == "-")
            return ComputeOp::Sub;
        if (s == "*")
            return ComputeOp::Mul;
        if (s == "//")
            return ComputeOp::Div;
        if (s == "\\\\" || s == "\\" || s == "mod")
            return ComputeOp::Mod;
        return std::nullopt;
    }

    /**
     * OPS5 arithmetic: right-associative, no precedence
     * (`2 + 3 * 4` is `2 + (3 * 4)`).
     */
    RhsTerm
    parseComputeExpr()
    {
        RhsTerm lhs = parseComputeOperand();
        std::optional<ComputeOp> op = computeOp();
        if (!op)
            return lhs;
        advance();
        auto node = std::make_shared<ComputeNode>();
        node->op = *op;
        node->lhs = std::move(lhs);
        node->rhs = parseComputeExpr();
        RhsTerm t;
        t.kind = RhsTermKind::Compute;
        t.compute = std::move(node);
        return t;
    }

    Action
    parseAction(Production &p)
    {
        const Token &lp = expect(TokenKind::LParen, "'(' of action");
        Action a;
        a.loc = SourceLoc{lp.line, lp.col};
        std::string head = expectAtom("action name");

        auto parse_assigns = [&](SymbolId cls) {
            ClassSchema &schema = prog().types().schema(cls);
            int positional = 0;
            while (!check(TokenKind::RParen)) {
                if (match(TokenKind::Hat)) {
                    SymbolId attr = syms().intern(expectAtom("attribute"));
                    int base = schema.fieldOf(attr);
                    if (prog().isVectorAttribute(attr)) {
                        int k = 0;
                        while (!check(TokenKind::RParen) &&
                               !check(TokenKind::Hat)) {
                            FieldAssign fa;
                            fa.field = base + k++;
                            fa.term = parseRhsTerm();
                            a.assigns.push_back(std::move(fa));
                        }
                        continue;
                    }
                    FieldAssign fa;
                    fa.field = base;
                    fa.term = parseRhsTerm();
                    a.assigns.push_back(std::move(fa));
                } else {
                    FieldAssign fa;
                    fa.field = positional++;
                    fa.term = parseRhsTerm();
                    a.assigns.push_back(std::move(fa));
                }
            }
        };

        if (head == "make") {
            a.kind = ActionKind::Make;
            a.cls = syms().intern(expectAtom("class name"));
            parse_assigns(a.cls);
        } else if (head == "remove") {
            a.kind = ActionKind::Remove;
            a.ce = static_cast<int>(
                expect(TokenKind::Int, "condition-element number").int_val);
        } else if (head == "modify") {
            a.kind = ActionKind::Modify;
            a.ce = static_cast<int>(
                expect(TokenKind::Int, "condition-element number").int_val);
            if (a.ce < 1 || a.ce > static_cast<int>(p.lhs().size()))
                fail("modify index out of range");
            parse_assigns(p.lhs()[a.ce - 1].cls);
        } else if (head == "bind") {
            a.kind = ActionKind::Bind;
            a.var = syms().intern(expect(TokenKind::Var, "variable").text);
            a.terms.push_back(parseRhsTerm());
        } else if (head == "write") {
            a.kind = ActionKind::Write;
            while (!check(TokenKind::RParen))
                a.terms.push_back(parseRhsTerm());
        } else if (head == "halt") {
            a.kind = ActionKind::Halt;
        } else {
            fail("unknown action '" + head + "'");
        }

        expect(TokenKind::RParen, "')'");
        return a;
    }

    // --- semantic analysis -------------------------------------------------

    /**
     * Validates a parsed production and fills its variable-binding
     * table: defining occurrences come only from positive condition
     * elements; non-equality variable tests need a prior binding;
     * remove/modify must target positive condition elements; RHS
     * variables must be bound by the LHS or a preceding bind.
     */
    void
    analyzeProduction(Production &p)
    {
        if (p.lhs().empty())
            fail("production '" + p.name() + "' has an empty LHS");
        if (p.lhs().front().negated)
            fail("production '" + p.name() +
                 "': first condition element must be positive");

        for (int ce_idx = 0;
             ce_idx < static_cast<int>(p.lhs().size()); ++ce_idx) {
            const ConditionElement &ce = p.lhs()[ce_idx];

            // Pass 1: a variable is bound within this CE if it has an
            // equality occurrence anywhere in the CE (condition
            // elements are conjunctions — occurrence order carries no
            // meaning). Record the first Eq occurrence per variable.
            std::unordered_set<SymbolId> local;
            for (const FieldTests &ft : ce.fields) {
                for (const AtomicTest &t : ft.tests) {
                    if (t.operand == OperandKind::Variable &&
                        t.pred == Predicate::Eq &&
                        !p.bindings().find(t.var) &&
                        local.insert(t.var).second && !ce.negated) {
                        p.bindings().define(
                            t.var, VarLocation{ce_idx, ft.field});
                    }
                }
            }

            // Pass 2: every variable occurrence must now be bound.
            for (const FieldTests &ft : ce.fields) {
                for (const AtomicTest &t : ft.tests) {
                    if (t.operand != OperandKind::Variable)
                        continue;
                    if (!p.bindings().find(t.var) && !local.count(t.var))
                        fail("variable " + syms().name(t.var) +
                             " used with a predicate but never bound "
                             "in '" + p.name() + "'");
                }
            }
        }

        std::unordered_set<SymbolId> rhs_bound;
        for (const Action &a : p.rhs()) {
            std::function<void(const RhsTerm &)> check_term =
                [&](const RhsTerm &t) {
                    if (t.kind == RhsTermKind::Compute) {
                        check_term(t.compute->lhs);
                        check_term(t.compute->rhs);
                        return;
                    }
                    if (t.kind != RhsTermKind::Variable)
                        return;
                    if (!p.bindings().find(t.var) &&
                        !rhs_bound.count(t.var)) {
                        fail("unbound variable " + syms().name(t.var) +
                             " on RHS of '" + p.name() + "'");
                    }
                };
            for (const FieldAssign &fa : a.assigns)
                check_term(fa.term);
            for (const RhsTerm &t : a.terms)
                check_term(t);
            if (a.kind == ActionKind::Bind)
                rhs_bound.insert(a.var);
            if (a.kind == ActionKind::Remove ||
                a.kind == ActionKind::Modify) {
                if (a.ce < 1 || a.ce > static_cast<int>(p.lhs().size()))
                    fail("remove/modify index out of range in '" +
                         p.name() + "'");
                if (p.lhs()[a.ce - 1].negated)
                    fail("remove/modify of a negated condition element "
                         "in '" + p.name() + "'");
            }
        }
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    ParsedProgram parsed_;
};

} // namespace

ParsedProgram
parseProgram(std::string_view source)
{
    return Parser(source).run();
}

std::shared_ptr<Program>
parse(std::string_view source)
{
    return parseProgram(source).program;
}

} // namespace psm::ops5
