#include "conflict.hpp"

#include <algorithm>
#include <sstream>

namespace psm::ops5 {

std::vector<TimeTag>
Instantiation::sortedTags() const
{
    if (!sorted_tags.empty() || wmes.empty())
        return sorted_tags;
    std::vector<TimeTag> tags;
    tags.reserve(wmes.size());
    for (const Wme *w : wmes)
        tags.push_back(w->timeTag());
    std::sort(tags.begin(), tags.end(), std::greater<>());
    return tags;
}

void
Instantiation::cacheSortedTags()
{
    if (sorted_tags.empty())
        sorted_tags = sortedTags();
}

std::string
Instantiation::toString(const SymbolTable &syms) const
{
    std::ostringstream os;
    os << production->name() << " [";
    for (std::size_t i = 0; i < wmes.size(); ++i) {
        if (i)
            os << " ";
        os << wmes[i]->timeTag();
    }
    os << "]";
    (void)syms;
    return os.str();
}

InstantiationKey
InstantiationKey::of(const Instantiation &inst)
{
    InstantiationKey k;
    k.production_id = inst.production->id();
    k.tags.reserve(inst.wmes.size());
    for (const Wme *w : inst.wmes)
        k.tags.push_back(w->timeTag());
    return k;
}

namespace {

/** Lexicographic compare of descending-sorted tag vectors. */
int
compareRecency(const std::vector<TimeTag> &a, const std::vector<TimeTag> &b)
{
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return a[i] > b[i] ? 1 : -1;
    }
    // OPS5 LEX: the instantiation with surplus time tags dominates.
    if (a.size() != b.size())
        return a.size() > b.size() ? 1 : -1;
    return 0;
}

/** Deterministic arbitrary tiebreak so runs are reproducible. */
int
compareArbitrary(const Instantiation &a, const Instantiation &b)
{
    if (a.production->id() != b.production->id())
        return a.production->id() < b.production->id() ? 1 : -1;
    InstantiationKey ka = InstantiationKey::of(a);
    InstantiationKey kb = InstantiationKey::of(b);
    if (ka.tags != kb.tags)
        return ka.tags < kb.tags ? -1 : 1;
    return 0;
}

/**
 * The cached recency key when present (the conflict set fills it on
 * insertion); otherwise computed into @p storage. No copy on the
 * cached path — select() runs this over the whole set every cycle.
 */
const std::vector<TimeTag> &
recencyKey(const Instantiation &inst, std::vector<TimeTag> &storage)
{
    if (!inst.sorted_tags.empty() || inst.wmes.empty())
        return inst.sorted_tags;
    storage = inst.sortedTags();
    return storage;
}

} // namespace

int
compareLex(const Instantiation &a, const Instantiation &b)
{
    std::vector<TimeTag> fa, fb;
    if (int c = compareRecency(recencyKey(a, fa), recencyKey(b, fb));
        c != 0)
        return c;
    int sa = a.production->specificity();
    int sb = b.production->specificity();
    if (sa != sb)
        return sa > sb ? 1 : -1;
    return compareArbitrary(a, b);
}

int
compareMea(const Instantiation &a, const Instantiation &b)
{
    TimeTag fa = a.wmes.empty() ? 0 : a.wmes.front()->timeTag();
    TimeTag fb = b.wmes.empty() ? 0 : b.wmes.front()->timeTag();
    if (fa != fb)
        return fa > fb ? 1 : -1;
    return compareLex(a, b);
}

void
ConflictSet::insert(Instantiation inst)
{
    inst.cacheSortedTags(); // done outside comparisons, once
    core::MutexLock lock(mutex_);
    InstantiationKey key = InstantiationKey::of(inst);
    if (tombstones_.erase(key) > 0)
        return; // annihilated by an earlier out-of-order removal
    live_.emplace(std::move(key), std::move(inst));
}

void
ConflictSet::remove(const InstantiationKey &key)
{
    core::MutexLock lock(mutex_);
    auto it = live_.find(key);
    if (it == live_.end()) {
        tombstones_.insert(key);
        return;
    }
    live_.erase(it);
    fired_.erase(key);
}

void
ConflictSet::remove(const Instantiation &inst)
{
    remove(InstantiationKey::of(inst));
}

std::optional<Instantiation>
ConflictSet::select(Strategy strategy) const
{
    core::MutexLock lock(mutex_);
    const Instantiation *best = nullptr;
    for (const auto &[key, inst] : live_) {
        if (fired_.count(key))
            continue;
        if (!best) {
            best = &inst;
            continue;
        }
        int c = strategy == Strategy::Lex ? compareLex(inst, *best)
                                          : compareMea(inst, *best);
        if (c > 0)
            best = &inst;
    }
    if (!best)
        return std::nullopt;
    return *best;
}

bool
ConflictSet::contains(const InstantiationKey &key) const
{
    core::MutexLock lock(mutex_);
    return live_.count(key) > 0;
}

void
ConflictSet::markFired(const Instantiation &inst)
{
    core::MutexLock lock(mutex_);
    fired_.insert(InstantiationKey::of(inst));
}

void
ConflictSet::markFiredKey(InstantiationKey key)
{
    core::MutexLock lock(mutex_);
    fired_.insert(std::move(key));
}

std::vector<InstantiationKey>
ConflictSet::firedKeys() const
{
    core::MutexLock lock(mutex_);
    return {fired_.begin(), fired_.end()};
}

std::vector<Instantiation>
ConflictSet::contents() const
{
    core::MutexLock lock(mutex_);
    std::vector<Instantiation> out;
    out.reserve(live_.size());
    for (const auto &[key, inst] : live_)
        out.push_back(inst);
    return out;
}

std::size_t
ConflictSet::size() const
{
    core::MutexLock lock(mutex_);
    return live_.size();
}

std::size_t
ConflictSet::pendingTombstones() const
{
    core::MutexLock lock(mutex_);
    return tombstones_.size();
}

void
ConflictSet::clearTombstones()
{
    core::MutexLock lock(mutex_);
    tombstones_.clear();
}

void
ConflictSet::clear()
{
    core::MutexLock lock(mutex_);
    live_.clear();
    tombstones_.clear();
    fired_.clear();
}

} // namespace psm::ops5
