/**
 * @file
 * Right-hand-side execution: the act phase of the recognize-act cycle.
 */

#ifndef PSM_OPS5_RHS_HPP
#define PSM_OPS5_RHS_HPP

#include <iosfwd>
#include <vector>

#include "conflict.hpp"

namespace psm::ops5 {

/** What one production firing did to working memory. */
struct FiringResult
{
    std::vector<WmeChange> changes; ///< inserts/removes in action order
    bool halted = false;            ///< a (halt) action ran
};

/**
 * Executes production right-hand sides against a WorkingMemory.
 *
 * `modify` follows OPS5 semantics: the old element is removed and a
 * fresh element (new time tag) is made with the edited fields, so the
 * match phase sees it as a remove/insert pair.
 */
class RhsExecutor
{
  public:
    /**
     * @param program the rule base (for schemas and symbol names)
     * @param wm      working memory to mutate
     * @param out     sink for (write ...) actions; null discards
     */
    RhsExecutor(const Program &program, WorkingMemory &wm,
                std::ostream *out = nullptr)
        : program_(program), wm_(wm), out_(out)
    {}

    /** Runs every action of @p inst, collecting the WM changes. */
    FiringResult fire(const Instantiation &inst);

  private:
    const Program &program_;
    WorkingMemory &wm_;
    std::ostream *out_;
};

/**
 * Maps a 1-based LHS condition-element index to the index of that CE's
 * WME within an instantiation (which stores only positive CEs).
 * @return -1 when @p ce_index names a negated CE or is out of range.
 */
int positiveOrdinal(const Production &p, int ce_index);

} // namespace psm::ops5

#endif // PSM_OPS5_RHS_HPP
