#include "symbol.hpp"

namespace psm::ops5 {

SymbolTable::SymbolTable()
{
    // Reserve id 0 for the distinguished symbol "nil".
    names_.emplace_back("nil");
    ids_.emplace("nil", kNilSymbol);
}

SymbolId
SymbolTable::intern(std::string_view text)
{
    auto it = ids_.find(std::string(text));
    if (it != ids_.end())
        return it->second;
    SymbolId id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(text);
    ids_.emplace(names_.back(), id);
    return id;
}

SymbolId
SymbolTable::find(std::string_view text) const
{
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? kNilSymbol : it->second;
}

int
SymbolTable::compare(SymbolId a, SymbolId b) const
{
    return names_.at(a).compare(names_.at(b));
}

} // namespace psm::ops5
