/**
 * @file
 * Monkey-and-bananas: the classic planning benchmark for production
 * systems, run here with the TREAT matcher to show that matchers are
 * interchangeable behind the Engine.
 */

#include <iostream>

#include "core/engine.hpp"
#include "ops5/parser.hpp"
#include "treat/treat.hpp"

namespace {

constexpr const char *kProgram = R"(
(literalize monkey at on holds)
(literalize thing name at)
(literalize goal wants)

; Walk to the ladder when the monkey is elsewhere (and empty-handed).
(p walk-to-ladder
    (goal ^wants bananas)
    (monkey ^at <m> ^on floor ^holds nothing)
    (thing ^name ladder ^at { <l> <> <m> })
    -->
    (write monkey walks from <m> to <l>)
    (modify 2 ^at <l>))

; Push the ladder under the bananas.
(p push-ladder
    (goal ^wants bananas)
    (monkey ^at <l> ^on floor ^holds nothing)
    (thing ^name ladder ^at <l>)
    (thing ^name bananas ^at { <b> <> <l> })
    -->
    (write monkey pushes ladder from <l> to <b>)
    (modify 3 ^at <b>)
    (modify 2 ^at <b>))

; Climb once the ladder is under the bananas.
(p climb
    (goal ^wants bananas)
    (monkey ^at <b> ^on floor ^holds nothing)
    (thing ^name ladder ^at <b>)
    (thing ^name bananas ^at <b>)
    -->
    (write monkey climbs the ladder)
    (modify 2 ^on ladder))

; Grab!
(p grab
    (goal ^wants bananas)
    (monkey ^at <b> ^on ladder ^holds nothing)
    (thing ^name bananas ^at <b>)
    -->
    (write monkey grabs the bananas)
    (modify 2 ^holds bananas)
    (halt))

(make monkey ^at door ^on floor ^holds nothing)
(make thing ^name ladder ^at window)
(make thing ^name bananas ^at center)
(make goal ^wants bananas)
)";

} // namespace

int
main()
{
    auto program = psm::ops5::parse(kProgram);
    psm::treat::TreatMatcher matcher(program);
    psm::core::Engine engine(program, matcher);
    engine.setOutput(&std::cout);
    engine.loadInitialWorkingMemory();

    psm::core::RunResult result = engine.run(20);
    std::cout << "plan length: " << result.firings << " firings\n";
    return result.halted ? 0 : 1;
}
