/**
 * @file
 * cluster_cli: operator tool for the cluster layer.
 *
 *     cluster_cli MODE [program.ops] [options]
 *
 * Modes (docs/ARCHITECTURE.md §14):
 *
 *   worker    Serve session shards on a TCP port.
 *       --port N            listen port (0 = ephemeral, printed)
 *       --slot K            ring slot identity (default 0)
 *       --dir D             state root (shards persist under
 *                           D/shard-<gsid>/); empty = no durability
 *       --ship H:P          ship WAL frames to a standby
 *       --matcher KIND      rete|treat|naive|fullstate|parallel
 *       --wal POLICY        none|batch|always (default batch)
 *       --checkpoint-every N  snapshot every N committed batches
 *       --queue-capacity N / --shed-watermark N / --max-batch N
 *
 *   standby   WAL-shipping receiver + promotable worker, one process.
 *       --port N            serve (promote) listen port
 *       --ship-port N       shipping listen port
 *       --dir D             replica root (doubles as the promote
 *                           worker's state root)
 *       plus the worker matcher/admission flags above
 *
 *   router    Consistent-hash front end.
 *       --port N            client listen port
 *       --worker H:P        one per worker slot, in slot order
 *       --standby H:P       promote endpoint of the standby process
 *       --vnodes N          ring virtual nodes per slot (default 64)
 *       --stats-port N / --stats-host A
 *                           HTTP stats plane: /stats.json carries the
 *                           router's cluster overview, /metrics the
 *                           exposition counters
 *
 *   load      Cluster load driver (the E20 client side).
 *       --router H:P        router endpoint
 *       --sessions N --clients N --iterations N --asserts N
 *       --run-cycles N --deadline-us N --rate HZ
 *       --first-gsid G      first session id (default 1)
 *       --json FILE         shared bench JSON schema
 *
 *   migrate   Live-migrate one session to a target slot.
 *       --router H:P --gsid G --target K
 *
 *   scrape    Fetch stats through the router.
 *       --router H:P [--slot K] [--metrics]
 *                           without --slot: the router's own overview
 *
 * Server modes run until SIGTERM/SIGINT, then shut down cleanly
 * (workers drain and checkpoint their shards). Every bound port is
 * printed as `PORT <role> <n>` for scripts to scrape.
 *
 * Exits 0 on success, 1 on errors, 2 on bad flags.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cli_util.hpp"
#include "cluster/load_driver.hpp"
#include "cluster/router.hpp"
#include "cluster/standby.hpp"
#include "cluster/worker.hpp"
#include "core/telemetry.hpp"
#include "obs/hub.hpp"
#include "obs/stats_server.hpp"
#include "ops5/parser.hpp"
#include "serve/serve.hpp"
#include "workloads/presets.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " worker|standby|router|load|migrate|scrape [program.ops] "
           "[options]\n"
           "see the header comment of examples/cluster_cli.cpp for "
           "the per-mode flags\n";
    return 2;
}

/** Parses "host:port"; host may be omitted ("":"9000" is invalid,
 *  ":9000" and "9000" default the host to 127.0.0.1). */
bool
parseEndpoint(const std::string &text, std::string &host,
              std::uint16_t &port)
{
    std::string::size_type colon = text.rfind(':');
    std::string host_part =
        colon == std::string::npos ? "" : text.substr(0, colon);
    std::string port_part =
        colon == std::string::npos ? text : text.substr(colon + 1);
    try {
        unsigned long p = std::stoul(port_part);
        if (p > 65535)
            return false;
        port = static_cast<std::uint16_t>(p);
    } catch (const std::exception &) {
        return false;
    }
    host = host_part.empty() ? "127.0.0.1" : host_part;
    return true;
}

/** Blocks until SIGINT or SIGTERM. Server modes call this after
 *  binding; the signal set is blocked before any thread spawns so
 *  every thread inherits the mask and sigwait owns delivery. */
void
waitForShutdownSignal()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    int sig = 0;
    sigwait(&set, &sig);
}

void
blockShutdownSignals()
{
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

struct CommonFlags
{
    std::string program_path;
    std::string preset_name = "tiny";

    std::shared_ptr<const psm::ops5::Program>
    load(std::string *name_out = nullptr) const
    {
        if (!program_path.empty()) {
            psm::ops5::ParsedProgram parsed;
            if (!psm::cli::loadProgramFile(program_path, parsed))
                throw std::runtime_error("cannot load " +
                                         program_path);
            if (name_out)
                *name_out = program_path;
            return parsed.program;
        }
        psm::workloads::SystemPreset preset =
            preset_name == "tiny"
                ? psm::workloads::tinyPreset()
                : psm::workloads::presetByName(preset_name);
        if (name_out)
            *name_out = "preset:" + preset.name;
        return psm::workloads::generateProgram(preset.config);
    }
};

int
runWorker(psm::cli::ArgReader &args, CommonFlags &common)
{
    psm::cluster::WorkerOptions opts;
    std::uint64_t port = 0;
    while (args.next()) {
        if (args.is("--preset")) {
            const char *v = args.value();
            if (!v)
                return 2;
            common.preset_name = v;
        } else if (args.is("--port")) {
            if (!args.valueUint(port) || port > 65535)
                return 2;
        } else if (args.is("--slot")) {
            std::uint64_t v;
            if (!args.valueUint(v))
                return 2;
            opts.slot = static_cast<std::uint32_t>(v);
        } else if (args.is("--dir")) {
            const char *v = args.value();
            if (!v)
                return 2;
            opts.dir = v;
        } else if (args.is("--ship")) {
            const char *v = args.value();
            if (!v ||
                !parseEndpoint(v, opts.ship_host, opts.ship_port))
                return 2;
        } else if (args.is("--matcher")) {
            const char *v = args.value();
            if (!v ||
                !psm::serve::parseMatcherKind(v, opts.matcher.kind))
                return 2;
        } else if (args.is("--wal")) {
            const char *v = args.value();
            if (!v || !psm::durable::parseFsyncPolicy(v, opts.fsync))
                return 2;
        } else if (args.is("--checkpoint-every")) {
            if (!args.valueUint(opts.checkpoint.every_batches))
                return 2;
        } else if (args.is("--queue-capacity")) {
            if (!args.valueSize(opts.queue_capacity))
                return 2;
        } else if (args.is("--shed-watermark")) {
            if (!args.valueSize(opts.shed_watermark))
                return 2;
        } else if (args.is("--max-batch")) {
            if (!args.valueSize(opts.max_batch))
                return 2;
        } else {
            return 2;
        }
    }
    opts.port = static_cast<std::uint16_t>(port);

    blockShutdownSignals();
    auto program = common.load();
    psm::cluster::Worker worker(program, opts);
    worker.start();
    std::printf("PORT worker %u\n", worker.port());
    std::fflush(stdout);
    waitForShutdownSignal();
    worker.stop();
    return 0;
}

int
runStandby(psm::cli::ArgReader &args, CommonFlags &common)
{
    psm::cluster::WorkerOptions wopts;
    psm::cluster::StandbyOptions sopts;
    std::uint64_t port = 0, ship_port = 0;
    while (args.next()) {
        if (args.is("--preset")) {
            const char *v = args.value();
            if (!v)
                return 2;
            common.preset_name = v;
        } else if (args.is("--port")) {
            if (!args.valueUint(port) || port > 65535)
                return 2;
        } else if (args.is("--ship-port")) {
            if (!args.valueUint(ship_port) || ship_port > 65535)
                return 2;
        } else if (args.is("--dir")) {
            const char *v = args.value();
            if (!v)
                return 2;
            wopts.dir = v;
        } else if (args.is("--slot")) {
            std::uint64_t v;
            if (!args.valueUint(v))
                return 2;
            wopts.slot = static_cast<std::uint32_t>(v);
        } else if (args.is("--matcher")) {
            const char *v = args.value();
            if (!v ||
                !psm::serve::parseMatcherKind(v, wopts.matcher.kind))
                return 2;
        } else if (args.is("--wal")) {
            const char *v = args.value();
            if (!v || !psm::durable::parseFsyncPolicy(v, wopts.fsync))
                return 2;
        } else if (args.is("--checkpoint-every")) {
            if (!args.valueUint(wopts.checkpoint.every_batches))
                return 2;
        } else {
            return 2;
        }
    }
    if (wopts.dir.empty()) {
        std::cerr << "error: standby needs --dir\n";
        return 2;
    }
    wopts.port = static_cast<std::uint16_t>(port);
    sopts.port = static_cast<std::uint16_t>(ship_port);
    sopts.dir = wopts.dir;

    blockShutdownSignals();
    auto program = common.load();
    psm::cluster::Standby standby(program, sopts);
    psm::cluster::Worker worker(program, wopts);
    // Promote-by-restore: the worker recovering a shard directory
    // must be its only writer, so the replica writer closes first.
    worker.on_open_shard = [&standby](std::uint64_t gsid) {
        standby.releaseShard(gsid);
    };
    worker.extra_stats_json = [&standby] {
        return standby.statsJson();
    };
    standby.start();
    worker.start();
    std::printf("PORT standby %u\nPORT ship %u\n", worker.port(),
                standby.port());
    std::fflush(stdout);
    waitForShutdownSignal();
    worker.stop();
    standby.stop();
    return 0;
}

int
runRouter(psm::cli::ArgReader &args)
{
    psm::cluster::RouterOptions opts;
    std::uint64_t port = 0;
    bool stats_port_set = false;
    std::uint64_t stats_port = 0;
    std::string stats_host = "127.0.0.1";
    while (args.next()) {
        if (args.is("--port")) {
            if (!args.valueUint(port) || port > 65535)
                return 2;
        } else if (args.is("--worker")) {
            const char *v = args.value();
            psm::cluster::Endpoint ep;
            if (!v || !parseEndpoint(v, ep.host, ep.port))
                return 2;
            opts.workers.push_back(ep);
        } else if (args.is("--standby")) {
            const char *v = args.value();
            if (!v || !parseEndpoint(v, opts.standby.host,
                                     opts.standby.port))
                return 2;
        } else if (args.is("--vnodes")) {
            if (!args.valueSize(opts.vnodes))
                return 2;
        } else if (args.is("--stats-port")) {
            if (!args.valueUint(stats_port) || stats_port > 65535)
                return 2;
            stats_port_set = true;
        } else if (args.is("--stats-host")) {
            const char *v = args.value();
            if (!v)
                return 2;
            stats_host = v;
        } else {
            return 2;
        }
    }
    if (opts.workers.empty()) {
        std::cerr << "error: router needs at least one --worker\n";
        return 2;
    }
    opts.port = static_cast<std::uint16_t>(port);

    blockShutdownSignals();
    psm::cluster::Router router(opts);
    router.start();

    // The router has no engine registry; the stats plane is an empty
    // registry plus the router's cluster overview extras.
    psm::telemetry::Registry registry(1);
    std::unique_ptr<psm::obs::MetricsHub> hub;
    std::unique_ptr<psm::obs::StatsServer> stats;
    if (stats_port_set) {
        hub = std::make_unique<psm::obs::MetricsHub>(registry);
        hub->setExtraJson([&router] { return router.extraJson(); });
        hub->setExtraExposition([&router](std::ostream &os) {
            os << router.extraExposition();
        });
        hub->start();
        // /workers/<slot>/metrics and /workers/<slot>/stats.json
        // proxy through the router's worker links, so one scrape
        // endpoint covers the whole cluster.
        auto extra_route = [&router](const std::string &target,
                                     std::string &body,
                                     std::string &content_type) {
            if (target.rfind("/workers/", 0) != 0)
                return false;
            std::string rest = target.substr(9);
            std::size_t slash = rest.find('/');
            if (slash == std::string::npos)
                return false;
            std::uint32_t slot = 0;
            try {
                slot = static_cast<std::uint32_t>(
                    std::stoul(rest.substr(0, slash)));
            } catch (const std::exception &) {
                return false;
            }
            std::string leaf = rest.substr(slash + 1);
            if (leaf == "metrics") {
                body = router.scrapeWorker(
                    slot, psm::cluster::ScrapeKind::Metrics);
                content_type =
                    "text/plain; version=0.0.4; charset=utf-8";
                return true;
            }
            if (leaf == "stats.json") {
                body = router.scrapeWorker(
                    slot, psm::cluster::ScrapeKind::StatsJson);
                content_type = "application/json";
                return true;
            }
            return false;
        };
        psm::obs::StatsServerOptions sopts;
        sopts.port = static_cast<std::uint16_t>(stats_port);
        sopts.bind_addr = stats_host;
        stats = std::make_unique<psm::obs::StatsServer>(*hub, sopts);
        stats->setExtraRoute(extra_route);
        if (stats->start()) {
            std::printf("PORT stats %u\n", stats->port());
        } else {
            std::cerr << "warning: stats server: " << stats->error()
                      << "\n";
            stats.reset();
        }
    }
    std::printf("PORT router %u\n", router.port());
    std::fflush(stdout);
    waitForShutdownSignal();
    stats.reset();
    hub.reset();
    router.stop();
    return 0;
}

int
runLoad(psm::cli::ArgReader &args, CommonFlags &common)
{
    psm::cluster::ClusterLoadConfig cfg;
    std::string json_path;
    std::uint64_t deadline_us = 0;
    bool have_router = false;
    while (args.next()) {
        if (args.is("--preset")) {
            const char *v = args.value();
            if (!v)
                return 2;
            common.preset_name = v;
        } else if (args.is("--router")) {
            const char *v = args.value();
            if (!v || !parseEndpoint(v, cfg.host, cfg.port))
                return 2;
            have_router = true;
        } else if (args.is("--sessions")) {
            if (!args.valueSize(cfg.sessions))
                return 2;
        } else if (args.is("--clients")) {
            if (!args.valueSize(cfg.clients_per_session))
                return 2;
        } else if (args.is("--iterations")) {
            if (!args.valueSize(cfg.iterations))
                return 2;
        } else if (args.is("--asserts")) {
            if (!args.valueSize(cfg.asserts_per_iteration))
                return 2;
        } else if (args.is("--run-cycles")) {
            if (!args.valueUint(cfg.run_cycles))
                return 2;
        } else if (args.is("--deadline-us")) {
            if (!args.valueUint(deadline_us))
                return 2;
        } else if (args.is("--rate")) {
            if (!args.valueDouble(cfg.arrival_rate_hz))
                return 2;
        } else if (args.is("--first-gsid")) {
            if (!args.valueUint(cfg.first_gsid))
                return 2;
        } else if (args.is("--json")) {
            const char *v = args.value();
            if (!v)
                return 2;
            json_path = v;
        } else {
            return 2;
        }
    }
    if (!have_router) {
        std::cerr << "error: load needs --router H:P\n";
        return 2;
    }
    cfg.deadline = std::chrono::microseconds(deadline_us);

    std::string workload_name;
    auto program = common.load(&workload_name);
    psm::cluster::ClusterLoadResult r =
        psm::cluster::runClusterLoad(program, cfg);

    std::printf("workload:    %s\n", workload_name.c_str());
    std::printf("sessions:    %zu  (clients/s %zu)\n", cfg.sessions,
                cfg.clients_per_session);
    std::printf("elapsed:     %.3f s\n", r.elapsed_seconds);
    std::printf("completed:   %llu  (expired %llu)\n",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.expired));
    std::printf("rejected:    %llu   errors: %llu\n",
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.errors));
    std::printf("throughput:  %.0f req/s\n", r.requests_per_sec);
    std::printf("latency(us): p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
                r.p50_us, r.p95_us, r.p99_us, r.max_us);

    if (!json_path.empty()) {
        psm::bench::JsonResult json("cluster_load");
        json.config("workload", workload_name);
        json.config("sessions", static_cast<double>(cfg.sessions));
        json.config("clients_per_session",
                    static_cast<double>(cfg.clients_per_session));
        json.config("iterations",
                    static_cast<double>(cfg.iterations));
        json.config("arrival_rate_hz", cfg.arrival_rate_hz);
        json.beginRow();
        json.col("name", std::string("load"));
        json.col("elapsed_seconds", r.elapsed_seconds);
        json.col("completed", static_cast<double>(r.completed));
        json.col("rejected", static_cast<double>(r.rejected));
        json.col("expired", static_cast<double>(r.expired));
        json.col("errors", static_cast<double>(r.errors));
        json.col("requests_per_sec", r.requests_per_sec);
        json.col("p50_us", r.p50_us);
        json.col("p95_us", r.p95_us);
        json.col("p99_us", r.p99_us);
        json.col("max_us", r.max_us);
        json.metric("requests_per_sec", r.requests_per_sec);
        json.metric("p99_us", r.p99_us);
        if (!json.save(json_path))
            return 1;
        std::printf("json saved:  %s\n", json_path.c_str());
    }
    return 0;
}

int
runMigrate(psm::cli::ArgReader &args)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint64_t gsid = 0, target = 0;
    bool have_router = false, have_gsid = false, have_target = false;
    while (args.next()) {
        if (args.is("--router")) {
            const char *v = args.value();
            if (!v || !parseEndpoint(v, host, port))
                return 2;
            have_router = true;
        } else if (args.is("--gsid")) {
            if (!args.valueUint(gsid))
                return 2;
            have_gsid = true;
        } else if (args.is("--target")) {
            if (!args.valueUint(target))
                return 2;
            have_target = true;
        } else {
            return 2;
        }
    }
    if (!have_router || !have_gsid || !have_target) {
        std::cerr << "error: migrate needs --router, --gsid, "
                     "--target\n";
        return 2;
    }
    psm::cluster::Client client(host, port);
    std::cout << client.migrate(gsid,
                                static_cast<std::uint32_t>(target))
              << "\n";
    return 0;
}

int
runScrape(psm::cli::ArgReader &args)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint64_t slot = psm::cluster::Client::kRouterScrape;
    psm::cluster::ScrapeKind kind =
        psm::cluster::ScrapeKind::StatsJson;
    bool have_router = false;
    while (args.next()) {
        if (args.is("--router")) {
            const char *v = args.value();
            if (!v || !parseEndpoint(v, host, port))
                return 2;
            have_router = true;
        } else if (args.is("--slot")) {
            if (!args.valueUint(slot))
                return 2;
        } else if (args.is("--metrics")) {
            kind = psm::cluster::ScrapeKind::Metrics;
        } else {
            return 2;
        }
    }
    if (!have_router) {
        std::cerr << "error: scrape needs --router H:P\n";
        return 2;
    }
    psm::cluster::Client client(host, port);
    std::cout << client.scrape(slot, kind) << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string mode = argv[1];

    CommonFlags common;
    int first = 2;
    if (argc > 2 && argv[2][0] != '-') {
        common.program_path = argv[2];
        first = 3;
    }
    psm::cli::ArgReader args(argc, argv, first);

    try {
        int rc;
        if (mode == "worker")
            rc = runWorker(args, common);
        else if (mode == "standby")
            rc = runStandby(args, common);
        else if (mode == "router")
            rc = runRouter(args);
        else if (mode == "load")
            rc = runLoad(args, common);
        else if (mode == "migrate")
            rc = runMigrate(args);
        else if (mode == "scrape")
            rc = runScrape(args);
        else
            return usage(argv[0]);
        return rc == 2 ? usage(argv[0]) : rc;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
