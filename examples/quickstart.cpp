/**
 * @file
 * Quickstart: the paper's own example (Figure 2-1).
 *
 * Parses a two-rule OPS5 program, loads working memory, runs the
 * recognize-act loop with the serial Rete matcher, and prints what
 * fired. This is the smallest end-to-end use of the library:
 *
 *     parse -> ReteMatcher -> Engine -> run
 */

#include <iostream>

#include "core/engine.hpp"
#include "ops5/parser.hpp"
#include "rete/matcher.hpp"

namespace {

constexpr const char *kProgram = R"(
(literalize goal type color)
(literalize block id color selected)

; The paper's Figure 2-1 production: find a block of the requested
; color that is not yet selected, and select it.
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
    -->
    (write selected block <i>)
    (modify 2 ^selected yes))

; Once no unselected block of the requested color remains, finish.
(p all-found
    (goal ^type find-blk ^color <c>)
    -(block ^color <c> ^selected no)
    -->
    (write done)
    (halt))

(make block ^id 1 ^color red  ^selected no)
(make block ^id 2 ^color blue ^selected no)
(make block ^id 3 ^color red  ^selected no)
(make goal ^type find-blk ^color red)
)";

} // namespace

int
main()
{
    auto program = psm::ops5::parse(kProgram);
    psm::rete::ReteMatcher matcher(program);
    psm::core::Engine engine(program, matcher);
    engine.setOutput(&std::cout);

    engine.loadInitialWorkingMemory();
    psm::core::RunResult result = engine.run(100);

    std::cout << "firings:     " << result.firings << "\n"
              << "wme changes: " << result.wme_changes << "\n"
              << "halted:      " << (result.halted ? "yes" : "no")
              << "\n";

    auto stats = matcher.stats();
    std::cout << "match work:  " << stats.activations
              << " node activations, " << stats.instructions
              << " cost-model instructions\n";
    return result.halted ? 0 : 1;
}
