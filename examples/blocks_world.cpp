/**
 * @file
 * Blocks-world tower builder: a richer multi-rule program showing
 * negated condition elements, numeric predicates, MEA conflict
 * resolution, and the firing observer.
 *
 * The program stacks all blocks into a single tower in size order
 * (largest at the bottom), one move at a time:
 *   - a block may move if nothing is on top of it;
 *   - it goes onto the largest clear block that is smaller-than-none
 *     and larger than it; the table hosts the largest block first.
 */

#include <iostream>

#include "core/engine.hpp"
#include "ops5/parser.hpp"
#include "rete/matcher.hpp"

namespace {

constexpr const char *kProgram = R"(
(strategy mea)
(literalize block id size on)
(literalize phase name)

; Move the largest unstacked clear block onto the table first.
(p base-block
    (phase ^name build)
    (block ^id <b> ^size <s> ^on heap)
    -(block ^on heap ^size > <s>)
    -(block ^on table)
    -->
    (write block <b> goes on the table)
    (modify 2 ^on table))

; Stack: the largest heap block goes onto the current tower top.
; The tower top is a placed block with nothing on it.
(p stack-block
    (phase ^name build)
    (block ^id <b> ^size <s> ^on heap)
    -(block ^on heap ^size > <s>)
    (block ^id <top> ^size > <s> ^on <> heap)
    -(block ^on <top>)
    -->
    (write block <b> goes on block <top>)
    (modify 2 ^on <top>))

; All blocks placed: nothing remains on the heap.
(p tower-done
    (phase ^name build)
    -(block ^on heap)
    -->
    (write tower complete)
    (halt))

(make block ^id a ^size 3 ^on heap)
(make block ^id b ^size 5 ^on heap)
(make block ^id c ^size 1 ^on heap)
(make block ^id d ^size 4 ^on heap)
(make block ^id e ^size 2 ^on heap)
(make phase ^name build)
)";

} // namespace

int
main()
{
    auto parsed = psm::ops5::parseProgram(kProgram);
    auto program = parsed.program;
    psm::rete::ReteMatcher matcher(program);
    psm::core::Engine engine(program, matcher,
                             parsed.strategy ==
                                     psm::ops5::StrategyKind::Mea
                                 ? psm::ops5::Strategy::Mea
                                 : psm::ops5::Strategy::Lex);
    engine.setOutput(&std::cout);

    int moves = 0;
    engine.setFiringObserver(
        [&](const psm::ops5::Instantiation &inst,
            const psm::ops5::FiringResult &) {
            if (inst.production->name() != "tower-done")
                ++moves;
        });

    engine.loadInitialWorkingMemory();
    psm::core::RunResult result = engine.run(50);

    std::cout << "moves: " << moves << " (5 expected)\n";
    return result.halted && moves == 5 ? 0 : 1;
}
