/**
 * @file
 * ops5_cli: run an OPS5 program from a file.
 *
 *     ops5_cli <program.ops> [options]
 *
 * Options:
 *     --matcher rete|treat|naive|fullstate|parallel   (default rete)
 *     --workers N          worker threads for --matcher parallel
 *     --scheduler K        task scheduler for --matcher parallel:
 *                          central | stealing | lockfree
 *     --max-cycles N       firing limit (default 10000)
 *     --trace FILE         save the activation trace (rete only;
 *                          other matchers are an error)
 *     --metrics FILE       write the telemetry registry as JSON,
 *                          including the paper-stats block
 *                          (rete/parallel only)
 *     --chrome-trace FILE  write real task spans as a Chrome/Perfetto
 *                          trace (rete/parallel only)
 *     --stats              print match statistics
 *     --validate           run the full Rete invariant validator
 *                          (structure, memories, conflict set) after
 *                          every match fixpoint (rete/parallel only)
 *     --quiet              suppress (write ...) output
 *     --lint               run the static analyzer (src/analysis)
 *                          before executing; findings go to stderr
 *                          and error-severity findings abort the run
 *                          (see the ops5_lint tool for the full
 *                          reporting surface)
 *
 * Observability (see docs/ARCHITECTURE.md §12):
 *     --stats-port N       serve GET /metrics and GET /stats.json on
 *                          --stats-host:N while the run executes (0
 *                          picks an ephemeral port; needs a telemetry
 *                          matcher, i.e. rete or parallel)
 *     --stats-host A       stats server bind address (default
 *                          127.0.0.1; 0.0.0.0 exposes the stats
 *                          plane beyond loopback — scrape-through
 *                          setups like the cluster router need it)
 *     --metrics-interval S dump a one-line JSON metrics summary to
 *                          stderr every S seconds (rete/parallel)
 *     --flight-recorder F  record engine-cycle and durability events;
 *                          dump them to F on a crash signal,
 *                          periodically, and at clean exit
 *
 * Durability (see docs/ARCHITECTURE.md §10):
 *     --snapshot-dir DIR   persist a WAL + snapshots under DIR; a
 *                          final snapshot is cut when the run ends
 *     --wal POLICY         fsync policy: none | batch | always
 *                          (default batch; the CLI syncs at exit)
 *     --restore            recover from existing state in DIR instead
 *                          of loading the program's initial WM
 *     --checkpoint-every N snapshot every N committed batches
 *     --checkpoint-ms N    snapshot every N milliseconds
 *
 * Exits 0 on halt or quiescence, 1 on errors (including any
 * invariant violation under --validate).
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "analysis/lint.hpp"
#include "cli_util.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hub.hpp"
#include "obs/stats_server.hpp"
#include "core/engine.hpp"
#include "durable/durable.hpp"
#include "core/parallel_matcher.hpp"
#include "core/telemetry.hpp"
#include "ops5/parser.hpp"
#include "psm/analysis.hpp"
#include "psm/trace_io.hpp"
#include "rete/matcher.hpp"
#include "rete/trace_export.hpp"
#include "rete/validate.hpp"
#include "treat/fullstate.hpp"
#include "treat/naive.hpp"
#include "treat/treat.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " <program.ops> [--matcher rete|treat|naive|fullstate|"
                 "parallel] [--workers N]\n"
                 "       [--scheduler central|stealing|lockfree] "
                 "[--max-cycles N] [--trace FILE]\n"
                 "       [--metrics FILE] [--chrome-trace FILE] "
                 "[--stats] [--validate] [--quiet]\n"
                 "       [--snapshot-dir DIR] [--wal none|batch|always] "
                 "[--restore]\n"
                 "       [--checkpoint-every N] [--checkpoint-ms N] "
                 "[--lint]\n"
                 "       [--stats-port N] [--stats-host A] [--metrics-interval SEC] "
                 "[--flight-recorder FILE]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    std::string path = argv[1];
    std::string matcher_name = "rete";
    std::string trace_path, metrics_path, chrome_trace_path;
    std::uint64_t max_cycles = 10000;
    std::size_t workers = 0;
    psm::core::SchedulerKind scheduler =
        psm::core::SchedulerKind::Central;
    bool stats = false, quiet = false, validate = false, lint = false;
    bool stats_port_set = false;
    std::uint64_t stats_port = 0;
    std::string stats_host = "127.0.0.1";
    std::uint64_t metrics_interval_s = 0;
    std::string flight_path;
    psm::cli::DurableFlags durable_flags;

    psm::cli::ArgReader args(argc, argv, 2);
    while (args.next()) {
        bool flag_ok = true;
        if (psm::cli::parseDurableFlag(args, durable_flags, flag_ok)) {
            if (!flag_ok)
                return usage(argv[0]);
        } else if (args.is("--matcher")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            matcher_name = v;
        } else if (args.is("--workers")) {
            if (!args.valueSize(workers))
                return usage(argv[0]);
        } else if (args.is("--scheduler")) {
            if (!psm::cli::parseSchedulerKind(args.value(),
                                              scheduler)) {
                std::cerr << "error: --scheduler needs central, "
                             "stealing, or lockfree\n";
                return 2;
            }
        } else if (args.is("--max-cycles")) {
            if (!args.valueUint(max_cycles))
                return usage(argv[0]);
        } else if (args.is("--trace")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            trace_path = v;
        } else if (args.is("--metrics")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            metrics_path = v;
        } else if (args.is("--chrome-trace")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            chrome_trace_path = v;
        } else if (args.is("--stats")) {
            stats = true;
        } else if (args.is("--validate")) {
            validate = true;
        } else if (args.is("--quiet")) {
            quiet = true;
        } else if (args.is("--lint")) {
            lint = true;
        } else if (args.is("--stats-host")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            stats_host = v;
        } else if (args.is("--stats-port")) {
            if (!args.valueUint(stats_port) || stats_port > 65535)
                return usage(argv[0]);
            stats_port_set = true;
        } else if (args.is("--metrics-interval")) {
            if (!args.valueUint(metrics_interval_s) ||
                metrics_interval_s == 0)
                return usage(argv[0]);
        } else if (args.is("--flight-recorder")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            flight_path = v;
        } else {
            return usage(argv[0]);
        }
    }

    psm::ops5::ParsedProgram parsed;
    if (!psm::cli::loadProgramFile(path, parsed))
        return 2;

    try {
        auto program = parsed.program;

        if (lint) {
            psm::analysis::LintResult lint_result =
                psm::analysis::lintProgram(*program);
            psm::analysis::writeLintText(std::cerr, lint_result, path);
            if (lint_result.gate(false)) {
                std::cerr << "error: lint found "
                          << lint_result.count(
                                 psm::analysis::Severity::Error)
                          << " error(s); not running " << path << "\n";
                return 1;
            }
        }

        // --trace needs the serial Rete matcher's activation recorder;
        // every other matcher would silently produce an empty file.
        if (!trace_path.empty() && matcher_name != "rete") {
            std::cerr << "error: --trace is only supported by "
                         "--matcher rete (got --matcher "
                      << matcher_name << ")\n";
            return 1;
        }
        if (!chrome_trace_path.empty() && matcher_name != "rete" &&
            matcher_name != "parallel") {
            std::cerr << "error: --chrome-trace is only supported by "
                         "--matcher rete or parallel (got --matcher "
                      << matcher_name << ")\n";
            return 1;
        }

        std::unique_ptr<psm::core::Matcher> matcher;
        psm::rete::TraceRecorder trace;
        std::unique_ptr<psm::rete::SpanRecorder> spans;
        psm::rete::Network *net = nullptr;
        if (matcher_name == "rete") {
            auto m = std::make_unique<psm::rete::ReteMatcher>(program);
            if (!trace_path.empty())
                m->setTraceSink(&trace);
            if (!chrome_trace_path.empty()) {
                spans = std::make_unique<psm::rete::SpanRecorder>(1);
                m->setSpanRecorder(spans.get());
            }
            net = &m->network();
            matcher = std::move(m);
        } else if (matcher_name == "treat") {
            matcher = std::make_unique<psm::treat::TreatMatcher>(program);
        } else if (matcher_name == "naive") {
            matcher = std::make_unique<psm::treat::NaiveMatcher>(program);
        } else if (matcher_name == "fullstate") {
            matcher =
                std::make_unique<psm::treat::FullStateMatcher>(program);
        } else if (matcher_name == "parallel") {
            psm::core::ParallelOptions opt;
            opt.n_workers = workers;
            opt.scheduler = scheduler;
            // Redundant ownership checking is cheap next to a CLI run.
            opt.access_check = true;
            auto m = std::make_unique<psm::core::ParallelReteMatcher>(
                program, opt);
            if (!chrome_trace_path.empty()) {
                spans = std::make_unique<psm::rete::SpanRecorder>(
                    m->options().n_workers + 1);
                m->setSpanRecorder(spans.get());
            }
            net = &m->network();
            matcher = std::move(m);
        } else {
            return usage(argv[0]);
        }
        psm::telemetry::Registry *metrics = nullptr;
        const bool want_live_metrics =
            stats_port_set || metrics_interval_s > 0;
        if (!metrics_path.empty() || want_live_metrics) {
            metrics = matcher->enableTelemetry();
            if (!metrics) {
                std::cerr << "error: --metrics, --stats-port and "
                             "--metrics-interval are only supported "
                             "by --matcher rete or parallel (got "
                             "--matcher "
                          << matcher_name << ")\n";
                return 1;
            }
        }
        if (validate && !net) {
            std::cerr << "error: --validate needs a network-based "
                         "matcher (rete or parallel)\n";
            return 1;
        }

        psm::core::Engine engine(program, *matcher,
                                 parsed.strategy ==
                                         psm::ops5::StrategyKind::Mea
                                     ? psm::ops5::Strategy::Mea
                                     : psm::ops5::Strategy::Lex);
        if (!quiet)
            engine.setOutput(&std::cout);

        const bool flight_on = !flight_path.empty();
        if (flight_on)
            psm::obs::FlightRecorder::instance().installCrashDump(
                flight_path.c_str());

        std::uint64_t validated = 0;
        std::uint64_t fixpoints = 0;
        if (validate || flight_on) {
            engine.setCycleCheck([&] {
                if (flight_on)
                    psm::obs::flightRecord(
                        psm::obs::FlightEvent::EngineCycle, 0,
                        fixpoints++);
                if (!validate)
                    return;
                psm::rete::ValidationResult r =
                    psm::rete::validateMatcherState(
                        *net, engine.workingMemory().liveElements(),
                        matcher->conflictSet());
                if (!r.ok())
                    throw std::runtime_error(
                        "invariant violation after match fixpoint " +
                        std::to_string(validated) + ": " + r.summary());
                ++validated;
            });
        }

        std::unique_ptr<psm::durable::Manager> durable;
        psm::durable::RecoveryStats recovery;
        if (durable_flags.options.enabled()) {
            durable = std::make_unique<psm::durable::Manager>(
                engine, durable_flags.options, metrics);
            if (durable_flags.restore &&
                psm::durable::Manager::hasState(
                    durable_flags.options.dir))
                recovery = durable->recover();
            durable->begin();
        }
        if (recovery.recovered) {
            std::cout << "restored: "
                      << (recovery.state_restored ? "state" : "replay")
                      << " from snapshot seq " << recovery.snapshot_seq
                      << " + " << recovery.wal_records_replayed
                      << " WAL records ("
                      << recovery.recovery_ms << " ms)\n";
            if (recovery.wal_truncated)
                std::cout << "wal tail cut: "
                          << recovery.wal_truncation_reason << "\n";
        } else {
            engine.loadInitialWorkingMemory();
        }
        std::unique_ptr<psm::obs::MetricsHub> hub;
        std::unique_ptr<psm::obs::StatsServer> stats_server;
        if (metrics && (want_live_metrics || flight_on)) {
            psm::obs::HubOptions hopts;
            if (metrics_interval_s > 0) {
                hopts.dump_to = &std::cerr;
                hopts.dump_every_ticks = metrics_interval_s;
            }
            hopts.flight_path = flight_path;
            hub = std::make_unique<psm::obs::MetricsHub>(*metrics,
                                                         hopts);
            hub->start();
            if (stats_port_set) {
                psm::obs::StatsServerOptions sopts;
                sopts.port = static_cast<std::uint16_t>(stats_port);
                sopts.bind_addr = stats_host;
                stats_server = std::make_unique<psm::obs::StatsServer>(
                    *hub, sopts);
                if (stats_server->start()) {
                    std::cout << "stats server: http://" << stats_host
                              << ":" << stats_server->port()
                              << "  (/metrics, /stats.json)\n"
                              << std::flush;
                } else {
                    std::cerr << "warning: stats server: "
                              << stats_server->error() << "\n";
                    stats_server.reset();
                }
            }
        }

        psm::core::RunResult result = engine.run(max_cycles);
        if (durable) {
            durable->sync();
            durable->checkpoint();
        }
        stats_server.reset();
        hub.reset();
        if (flight_on) {
            psm::obs::flightRecord(
                psm::obs::FlightEvent::CleanShutdown);
            psm::obs::FlightRecorder::instance().dumpToFile(
                flight_path.c_str(), "clean_shutdown");
            std::cout << "flight recorder: " << flight_path << "\n";
        }

        std::cout << "---\n"
                  << "matcher:     " << matcher->name() << "\n"
                  << "firings:     " << result.firings << "\n"
                  << "wme changes: " << result.wme_changes << "\n"
                  << "end state:   "
                  << (result.halted ? "halt"
                                    : result.quiescent ? "quiescent"
                                                       : "cycle limit")
                  << "\n";
        if (validate)
            std::cout << "validated:   " << validated
                      << " match fixpoints, all invariants hold\n";
        if (durable)
            std::cout << "durable:     " << durable->walRecords()
                      << " WAL records, snapshot at seq "
                      << engine.batchSeq() << " in "
                      << durable_flags.options.dir << "\n";
        if (stats) {
            auto s = matcher->stats();
            std::cout << "activations: " << s.activations << "\n"
                      << "comparisons: " << s.comparisons << "\n"
                      << "instructions (cost model): " << s.instructions
                      << "\n";
        }
        if (!trace_path.empty()) {
            if (psm::sim::saveTraceFile(trace, trace_path))
                std::cout << "trace saved: " << trace_path << "\n";
            else
                std::cerr << "error: failed writing " << trace_path
                          << "\n";
        }
        if (metrics && !metrics_path.empty()) {
            std::ofstream out(metrics_path);
            if (out) {
                metrics->writeJson(
                    out, psm::sim::paperStatsJson(
                             psm::sim::paperStatsFromTelemetry(*metrics)));
                std::cout << "metrics saved: " << metrics_path << "\n";
            } else {
                std::cerr << "error: failed writing " << metrics_path
                          << "\n";
                return 1;
            }
        }
        if (spans) {
            if (psm::rete::saveChromeTrace(
                    chrome_trace_path,
                    psm::rete::chromeEventsFromReal(*spans)))
                std::cout << "chrome trace saved: " << chrome_trace_path
                          << "\n";
            else {
                std::cerr << "error: failed writing "
                          << chrome_trace_path << "\n";
                return 1;
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
