/**
 * @file
 * ops5_lint: static analysis of OPS5 programs (src/analysis).
 *
 *     ops5_lint <program.ops> [more.ops ...] [options]
 *
 * Options:
 *     --json FILE          write the report as JSON (- = stdout)
 *     --werror             warnings fail the run like errors
 *     --min-severity S     text-report floor: note|warning|error
 *     --disable IDS        comma-separated rule ids to suppress
 *     --no-bindings --no-schema --no-rules --no-join-cost
 *     --no-interference    disable one analysis pass
 *     --interference-dot FILE   interference graph as Graphviz DOT
 *     --interference-json FILE  interference graph as JSON
 *     --explain            print the rule catalog and exit
 *     --quiet              suppress the text report
 *
 * The interference exports describe the FIRST input file. Exit
 * status: 0 clean, 1 findings that gate (errors, or warnings under
 * --werror), 2 parse/usage errors. Parse failures are reported both
 * on stderr and as L001 diagnostics in the JSON report.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/lint.hpp"
#include "cli_util.hpp"
#include "ops5/parser.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " <program.ops> [more.ops ...] [--json FILE] "
                 "[--werror]\n"
                 "       [--min-severity note|warning|error] "
                 "[--disable ID,ID,...]\n"
                 "       [--no-bindings] [--no-schema] [--no-rules] "
                 "[--no-join-cost]\n"
                 "       [--no-interference] [--interference-dot FILE]\n"
                 "       [--interference-json FILE] [--explain] "
                 "[--quiet]\n";
    return 2;
}

/** One input file's outcome. */
struct FileReport
{
    std::string path;
    psm::analysis::LintResult result;
    bool parse_failed = false;
};

bool
writeTo(const std::string &path, const std::string &content,
        const char *what)
{
    if (path == "-") {
        std::cout << content;
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << what << " to " << path
                  << "\n";
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    std::vector<std::string> inputs;
    std::string json_path, dot_path, graph_json_path;
    psm::analysis::LintOptions options;
    psm::analysis::Severity min_severity =
        psm::analysis::Severity::Note;
    bool werror = false, quiet = false;

    psm::cli::ArgReader args(argc, argv, 1);
    while (args.next()) {
        if (args.is("--json")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            json_path = v;
        } else if (args.is("--werror")) {
            werror = true;
        } else if (args.is("--quiet")) {
            quiet = true;
        } else if (args.is("--min-severity")) {
            const char *v = args.value();
            if (!v || !psm::analysis::parseSeverity(v, min_severity)) {
                std::cerr << "error: --min-severity needs note, "
                             "warning, or error\n";
                return 2;
            }
        } else if (args.is("--disable")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            std::istringstream ids(v);
            std::string id;
            while (std::getline(ids, id, ','))
                if (!id.empty())
                    options.disabled_ids.insert(id);
        } else if (args.is("--no-bindings")) {
            options.pass_bindings = false;
        } else if (args.is("--no-schema")) {
            options.pass_schema = false;
        } else if (args.is("--no-rules")) {
            options.pass_rules = false;
        } else if (args.is("--no-join-cost")) {
            options.pass_join_cost = false;
        } else if (args.is("--no-interference")) {
            options.pass_interference = false;
        } else if (args.is("--interference-dot")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            dot_path = v;
        } else if (args.is("--interference-json")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            graph_json_path = v;
        } else if (args.is("--explain")) {
            for (const auto &rule : psm::analysis::ruleCatalog()) {
                std::cout << rule.id << "  "
                          << psm::analysis::severityName(rule.severity)
                          << "  [" << rule.pass << "]  " << rule.title
                          << "\n";
            }
            return 0;
        } else if (!args.arg().empty() && args.arg()[0] == '-') {
            return usage(argv[0]);
        } else {
            inputs.push_back(args.arg());
        }
    }
    if (inputs.empty())
        return usage(argv[0]);

    std::vector<FileReport> reports;
    bool any_parse_error = false;
    for (const std::string &path : inputs) {
        FileReport report;
        report.path = path;

        std::ifstream file(path);
        if (!file) {
            std::cerr << path << ": error: cannot open file\n";
            report.parse_failed = true;
            report.result.diagnostics.push_back(
                {"L001", psm::analysis::Severity::Error, "parse", "",
                 {}, "cannot open file"});
        } else {
            std::ostringstream source;
            source << file.rdbuf();
            try {
                psm::ops5::ParsedProgram parsed =
                    psm::ops5::parseProgram(source.str());
                report.result =
                    psm::analysis::lintProgram(*parsed.program,
                                               options);
            } catch (const psm::ops5::ParseError &e) {
                std::cerr << path << ":" << e.line() << ":" << e.col()
                          << ": error: " << e.what() << "\n";
                report.parse_failed = true;
                report.result.diagnostics.push_back(
                    {"L001", psm::analysis::Severity::Error, "parse",
                     "",
                     psm::ops5::SourceLoc{e.line(), e.col()},
                     e.what()});
            }
        }
        any_parse_error |= report.parse_failed;
        reports.push_back(std::move(report));
    }

    bool gated = false;
    std::size_t errors = 0, warnings = 0, notes = 0;
    for (const FileReport &r : reports) {
        if (!quiet)
            psm::analysis::writeLintText(std::cout, r.result, r.path,
                                         min_severity);
        gated |= r.result.gate(werror);
        errors += r.result.count(psm::analysis::Severity::Error);
        warnings += r.result.count(psm::analysis::Severity::Warning);
        notes += r.result.count(psm::analysis::Severity::Note);
    }
    if (!quiet) {
        std::cout << inputs.size() << " file"
                  << (inputs.size() == 1 ? "" : "s") << ": " << errors
                  << " error" << (errors == 1 ? "" : "s") << ", "
                  << warnings << " warning"
                  << (warnings == 1 ? "" : "s") << ", " << notes
                  << " note" << (notes == 1 ? "" : "s") << "\n";
    }

    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\"lint\": \"ops5_lint\", \"version\": 1, "
                "\"werror\": "
             << (werror ? "true" : "false") << ", \"files\": [";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            if (i)
                json << ", ";
            psm::analysis::writeLintFileJson(json, reports[i].result,
                                             reports[i].path);
        }
        json << "], \"summary\": {\"errors\": " << errors
             << ", \"warnings\": " << warnings
             << ", \"notes\": " << notes << "}}\n";
        if (!writeTo(json_path, json.str(), "JSON report"))
            return 2;
    }
    if (!dot_path.empty()) {
        std::ostringstream dot;
        psm::analysis::writeInterferenceDot(
            reports.front().result.interference, dot);
        if (!writeTo(dot_path, dot.str(), "interference DOT"))
            return 2;
    }
    if (!graph_json_path.empty()) {
        std::ostringstream graph;
        psm::analysis::writeInterferenceJson(
            reports.front().result.interference, graph);
        if (!writeTo(graph_json_path, graph.str(), "interference JSON"))
            return 2;
    }

    if (any_parse_error)
        return 2;
    return gated ? 1 : 0;
}
