/**
 * @file
 * Shared command-line plumbing for the example CLIs (ops5_cli,
 * psm_sim_cli, serve_cli): a small argv cursor with typed operand
 * parsing, the scheduler-kind spelling, and JSON string escaping —
 * the helpers each binary used to reimplement privately.
 */

#ifndef PSM_EXAMPLES_CLI_UTIL_HPP
#define PSM_EXAMPLES_CLI_UTIL_HPP

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/task_queue.hpp"
#include "durable/manager.hpp"
#include "ops5/parser.hpp"

namespace psm::cli {

/**
 * Forward cursor over argv:
 *
 *     ArgReader r(argc, argv, 2);
 *     while (r.next()) {
 *         if (r.is("--workers")) {
 *             if (!r.valueSize(workers)) return usage(argv[0]);
 *         } else ...
 *     }
 *
 * value*() consume the following operand and return false when it is
 * missing or fails to parse, so every flag keeps the "missing operand
 * = usage error" behaviour in one line.
 */
class ArgReader
{
  public:
    ArgReader(int argc, char **argv, int first)
        : argc_(argc), argv_(argv), i_(first - 1)
    {}

    /** Advances to the next argument; false at the end. */
    bool
    next()
    {
        if (i_ + 1 >= argc_)
            return false;
        arg_ = argv_[++i_];
        return true;
    }

    const std::string &arg() const { return arg_; }
    bool is(const char *flag) const { return arg_ == flag; }

    /** Consumes and returns the next operand, or nullptr. */
    const char *
    value()
    {
        return i_ + 1 < argc_ ? argv_[++i_] : nullptr;
    }

    /** Peeks at the next operand without consuming it. */
    const char *
    peek() const
    {
        return i_ + 1 < argc_ ? argv_[i_ + 1] : nullptr;
    }

    bool
    valueUint(std::uint64_t &out)
    {
        const char *v = value();
        if (!v)
            return false;
        char *end = nullptr;
        out = std::strtoull(v, &end, 10);
        return end != v && *end == '\0';
    }

    bool
    valueSize(std::size_t &out)
    {
        std::uint64_t v = 0;
        if (!valueUint(v))
            return false;
        out = static_cast<std::size_t>(v);
        return true;
    }

    bool
    valueDouble(double &out)
    {
        const char *v = value();
        if (!v)
            return false;
        char *end = nullptr;
        out = std::strtod(v, &end);
        return end != v && *end == '\0';
    }

  private:
    int argc_;
    char **argv_;
    int i_;
    std::string arg_;
};

/** Parses "central|stealing|lockfree"; false on anything else. */
inline bool
parseSchedulerKind(const char *text, core::SchedulerKind &out)
{
    if (!text)
        return false;
    if (std::strcmp(text, "central") == 0) {
        out = core::SchedulerKind::Central;
    } else if (std::strcmp(text, "stealing") == 0) {
        out = core::SchedulerKind::Stealing;
    } else if (std::strcmp(text, "lockfree") == 0) {
        out = core::SchedulerKind::LockFree;
    } else {
        return false;
    }
    return true;
}

inline const char *
schedulerKindName(core::SchedulerKind kind)
{
    switch (kind) {
      case core::SchedulerKind::Central: return "central";
      case core::SchedulerKind::Stealing: return "stealing";
      case core::SchedulerKind::LockFree: return "lockfree";
    }
    return "unknown";
}

/**
 * The durability flags shared by ops5_cli and serve_cli:
 *
 *     --snapshot-dir DIR     state directory; enables durability
 *     --wal POLICY           fsync policy: none | batch | always
 *     --restore              warm-start from existing state in DIR
 *     --checkpoint-every N   snapshot every N committed batches
 *     --checkpoint-ms N      snapshot every N milliseconds
 */
struct DurableFlags
{
    durable::DurableOptions options;
    bool restore = false;
};

/** Inline "none|batch|always" parser (keeps this header usable from
 *  binaries that do not link psm_durable). */
inline bool
parseFsyncFlag(const char *text, durable::FsyncPolicy &out)
{
    if (!text)
        return false;
    if (std::strcmp(text, "none") == 0) {
        out = durable::FsyncPolicy::None;
    } else if (std::strcmp(text, "batch") == 0) {
        out = durable::FsyncPolicy::Batch;
    } else if (std::strcmp(text, "always") == 0) {
        out = durable::FsyncPolicy::Always;
    } else {
        return false;
    }
    return true;
}

/**
 * Consumes the current argument when it is one of the durability
 * flags. Returns true when it was (even on a bad operand — check
 * @p ok); false means "not a durability flag, keep dispatching".
 */
inline bool
parseDurableFlag(ArgReader &args, DurableFlags &out, bool &ok)
{
    ok = true;
    if (args.is("--snapshot-dir")) {
        const char *v = args.value();
        if (!v)
            ok = false;
        else
            out.options.dir = v;
    } else if (args.is("--wal")) {
        if (!parseFsyncFlag(args.value(), out.options.fsync))
            ok = false;
    } else if (args.is("--restore")) {
        out.restore = true;
    } else if (args.is("--checkpoint-every")) {
        if (!args.valueUint(out.options.checkpoint.every_batches))
            ok = false;
    } else if (args.is("--checkpoint-ms")) {
        std::uint64_t ms = 0;
        if (!args.valueUint(ms))
            ok = false;
        else
            out.options.checkpoint.every = std::chrono::milliseconds(ms);
    } else {
        return false;
    }
    return true;
}

/**
 * Loads and parses one OPS5 source file. On failure prints a
 * compiler-style `path:line:col: error: message` diagnostic to stderr
 * and returns false — every CLI treats that as exit code 2, so parse
 * errors are distinguishable from runtime failures (exit 1) in
 * scripts and CI.
 */
inline bool
loadProgramFile(const std::string &path, ops5::ParsedProgram &out)
{
    std::ifstream file(path);
    if (!file) {
        std::cerr << path << ": error: cannot open file\n";
        return false;
    }
    std::ostringstream source;
    source << file.rdbuf();
    try {
        out = ops5::parseProgram(source.str());
    } catch (const ops5::ParseError &e) {
        std::cerr << path << ":" << e.line() << ":" << e.col()
                  << ": error: " << e.what() << "\n";
        return false;
    }
    return true;
}

/** Minimal JSON string escape (paths can contain quotes). */
inline std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace psm::cli

#endif // PSM_EXAMPLES_CLI_UTIL_HPP
