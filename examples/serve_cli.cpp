/**
 * @file
 * serve_cli: closed-loop load driver for the serving layer.
 *
 *     serve_cli [program.ops] [options]
 *
 * Runs sessions × threads × clients against a SessionPool and prints
 * throughput, latency percentiles, and the admission-control ledger.
 * Without a program file it generates a synthetic workload preset
 * (the programs must have initial working memory — the client uses
 * its WME templates as the assert vocabulary).
 *
 * Options:
 *     --preset NAME        synthetic workload: tiny (default) or a
 *                          paper system (vt, ilog, mud, daa, r1-soar,
 *                          eps-soar); ignored with a program file
 *     --sessions N         independent engine sessions (default 1)
 *     --threads N          server threads (default 1)
 *     --clients N          client threads per session (default 1)
 *     --iterations N       iterations per client (default 100)
 *     --asserts N          asserts per iteration (default 4)
 *     --run-cycles N       add a Run request per iteration, budgeted
 *                          to N firings (default 0 = ingest only)
 *     --deadline-us N      per-request deadline in µs (default 0 = none)
 *     --rate HZ            per-client arrival rate in iterations/sec
 *                          (default 0 = closed loop)
 *     --matcher KIND       rete|treat|naive|fullstate|parallel
 *     --workers N          parallel matcher workers per session
 *     --scheduler K        central|stealing|lockfree (parallel only)
 *     --queue-capacity N   per-session queue bound (default 1024)
 *     --shed-watermark N   pool-wide pending high-watermark
 *                          (default 0 = no shedding)
 *     --max-batch N        max WM changes folded per match batch
 *     --json FILE          write the shared bench JSON schema
 *     --metrics FILE       write the pool telemetry registry as JSON
 *     --lint               reject the program at pool construction
 *                          if the static analyzer (src/analysis)
 *                          finds error-severity defects
 *
 * Observability (docs/ARCHITECTURE.md §12):
 *     --stats-port N       serve GET /metrics (Prometheus text),
 *                          GET /stats.json and GET /healthz on
 *                          --stats-host:N while the load runs (0
 *                          picks an ephemeral port, printed at
 *                          startup)
 *     --stats-host A       stats server bind address (default
 *                          127.0.0.1; 0.0.0.0 exposes the stats
 *                          plane beyond loopback)
 *     --metrics-interval S dump a one-line JSON metrics summary to
 *                          stderr every S seconds during the run
 *     --flight-recorder F  record serve/durable events in the crash
 *                          flight recorder; dump them to F on
 *                          SIGSEGV/SIGABRT, periodically (survives
 *                          SIGKILL), and at clean shutdown
 *
 * Durability (per-session state under DIR/session-<id>; see
 * docs/ARCHITECTURE.md §10):
 *     --snapshot-dir DIR   enable the WAL + drain-time checkpoints
 *     --wal POLICY         fsync policy: none | batch | always
 *     --restore            warm-start sessions from existing state
 *     --checkpoint-every N snapshot every N committed batches
 *     --checkpoint-ms N    snapshot every N milliseconds
 *     --recover-check      before serving, recover every session's
 *                          on-disk state twice — once preferring the
 *                          Rete state-restore path, once forcing
 *                          replay restore — and fail unless both
 *                          agree on working memory and conflict set
 *
 * Exits 0 on success, 1 on errors (including a --recover-check
 * mismatch), 2 on bad flags.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cli_util.hpp"
#include "durable/durable.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hub.hpp"
#include "obs/stats_server.hpp"
#include "ops5/parser.hpp"
#include "rete/matcher.hpp"
#include "serve/serve.hpp"
#include "workloads/presets.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [program.ops] [--preset NAME] [--sessions N] "
           "[--threads N] [--clients N]\n"
           "       [--iterations N] [--asserts N] [--run-cycles N] "
           "[--deadline-us N] [--rate HZ]\n"
           "       [--matcher rete|treat|naive|fullstate|parallel] "
           "[--workers N]\n"
           "       [--scheduler central|stealing|lockfree] "
           "[--queue-capacity N]\n"
           "       [--shed-watermark N] [--max-batch N] "
           "[--json FILE] [--metrics FILE]\n"
           "       [--snapshot-dir DIR] [--wal none|batch|always] "
           "[--restore]\n"
           "       [--checkpoint-every N] [--checkpoint-ms N] "
           "[--recover-check] [--lint]\n"
           "       [--stats-port N] [--stats-host A] [--metrics-interval SEC] "
           "[--flight-recorder FILE]\n";
    return 2;
}

/** Canonical, order-independent image of one engine's durable state:
 *  every live WME (tag, class, fields) and every live conflict-set
 *  instantiation key — the two things recovery must reproduce. */
struct EngineImage
{
    std::vector<psm::durable::SnapshotWme> wmes;
    std::vector<psm::ops5::InstantiationKey> conflict;

    bool
    operator==(const EngineImage &o) const
    {
        if (wmes.size() != o.wmes.size() ||
            conflict.size() != o.conflict.size())
            return false;
        for (std::size_t i = 0; i < wmes.size(); ++i)
            if (wmes[i].tag != o.wmes[i].tag ||
                wmes[i].cls != o.wmes[i].cls ||
                wmes[i].fields != o.wmes[i].fields)
                return false;
        return conflict == o.conflict;
    }
};

EngineImage
imageOf(psm::core::Engine &engine)
{
    EngineImage img;
    for (const psm::ops5::Wme *w :
         engine.workingMemory().liveElements()) {
        psm::durable::SnapshotWme sw;
        sw.tag = w->timeTag();
        sw.cls = w->className();
        for (int f = 0; f < w->fieldCount(); ++f)
            sw.fields.push_back(w->field(f));
        img.wmes.push_back(std::move(sw));
    }
    std::sort(img.wmes.begin(), img.wmes.end(),
              [](const auto &a, const auto &b) { return a.tag < b.tag; });
    for (const psm::ops5::Instantiation &inst :
         engine.matcher().conflictSet().contents())
        img.conflict.push_back(psm::ops5::InstantiationKey::of(inst));
    std::sort(img.conflict.begin(), img.conflict.end(),
              [](const auto &a, const auto &b) {
                  return a.production_id != b.production_id
                             ? a.production_id < b.production_id
                             : a.tags < b.tags;
              });
    return img;
}

/**
 * Recovers one session directory into a fresh serial-Rete engine.
 * @p force_replay strips the snapshot's match-state section so the
 * replay path runs even when state restore is available; the WAL tail
 * is applied identically on both paths.
 */
EngineImage
recoverImage(std::shared_ptr<const psm::ops5::Program> program,
             const std::string &dir, bool force_replay,
             bool &used_state)
{
    namespace fs = std::filesystem;
    psm::rete::ReteMatcher matcher(program);
    psm::core::Engine engine(program, matcher);

    // Newest parseable snapshot, same preference order as recovery.
    std::vector<std::pair<std::uint64_t, std::string>> snaps;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("snap-", 0) == 0 &&
            name.size() > 11 &&
            name.compare(name.size() - 6, 6, ".psnap") == 0)
            snaps.emplace_back(
                std::stoull(name.substr(5, name.size() - 11)),
                entry.path().string());
    }
    std::sort(snaps.begin(), snaps.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    used_state = false;
    for (const auto &[seq, path] : snaps) {
        try {
            psm::durable::SnapshotData snap =
                psm::durable::readSnapshotFile(path);
            if (force_replay)
                snap.rete.present = false;
            used_state = psm::durable::restoreSnapshot(engine, snap);
            break;
        } catch (const psm::durable::DurableError &) {
            // Corrupt newest: fall back, exactly like Manager.
        }
    }

    psm::durable::WalReadResult wal = psm::durable::readWal(
        dir + "/wal.plog", psm::durable::programFingerprint(*program));
    for (const psm::core::LoggedBatch &record : wal.records) {
        if (record.seq <= engine.batchSeq())
            continue;
        engine.applyLoggedBatch(record);
    }
    return imageOf(engine);
}

/** The --recover-check pass; returns false on any mismatch. */
bool
recoverCheck(std::shared_ptr<const psm::ops5::Program> program,
             const std::string &pool_dir, std::size_t sessions)
{
    bool all_ok = true;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < sessions; ++i) {
        std::string dir =
            psm::serve::SessionPool::sessionDir(pool_dir, i);
        if (!psm::durable::Manager::hasState(dir))
            continue;
        bool state_a = false, state_b = false;
        EngineImage a = recoverImage(program, dir, false, state_a);
        EngineImage b = recoverImage(program, dir, true, state_b);
        ++checked;
        if (!(a == b)) {
            std::cerr << "recover-check: session " << i
                      << " MISMATCH between "
                      << (state_a ? "state" : "replay")
                      << " restore and forced replay (wm " << a.wmes.size()
                      << " vs " << b.wmes.size() << ", conflict "
                      << a.conflict.size() << " vs " << b.conflict.size()
                      << ")\n";
            all_ok = false;
            continue;
        }
        std::printf("recover-check: session %zu ok (%s restore, "
                    "wm %zu, conflict %zu)\n",
                    i, state_a ? "state" : "replay", a.wmes.size(),
                    a.conflict.size());
    }
    std::printf("recover-check: %zu session(s) checked\n", checked);
    return all_ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string program_path, preset_name = "tiny";
    std::string json_path, metrics_path;
    psm::serve::LoadConfig cfg;
    std::uint64_t deadline_us = 0;
    psm::cli::DurableFlags durable_flags;
    bool recover_check = false;
    bool stats_port_set = false;
    std::uint64_t stats_port = 0;
    std::string stats_host = "127.0.0.1";
    std::uint64_t metrics_interval_s = 0;
    std::string flight_path;

    int first = 1;
    if (argc > 1 && argv[1][0] != '-') {
        program_path = argv[1];
        first = 2;
    }

    psm::cli::ArgReader args(argc, argv, first);
    while (args.next()) {
        bool flag_ok = true;
        if (psm::cli::parseDurableFlag(args, durable_flags, flag_ok)) {
            if (!flag_ok)
                return usage(argv[0]);
        } else if (args.is("--recover-check")) {
            recover_check = true;
        } else if (args.is("--lint")) {
            cfg.lint = true;
        } else if (args.is("--preset")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            preset_name = v;
        } else if (args.is("--sessions")) {
            if (!args.valueSize(cfg.sessions))
                return usage(argv[0]);
        } else if (args.is("--threads")) {
            if (!args.valueSize(cfg.threads))
                return usage(argv[0]);
        } else if (args.is("--clients")) {
            if (!args.valueSize(cfg.clients_per_session))
                return usage(argv[0]);
        } else if (args.is("--iterations")) {
            if (!args.valueSize(cfg.iterations))
                return usage(argv[0]);
        } else if (args.is("--asserts")) {
            if (!args.valueSize(cfg.asserts_per_iteration))
                return usage(argv[0]);
        } else if (args.is("--run-cycles")) {
            if (!args.valueUint(cfg.run_cycles))
                return usage(argv[0]);
        } else if (args.is("--deadline-us")) {
            if (!args.valueUint(deadline_us))
                return usage(argv[0]);
        } else if (args.is("--rate")) {
            if (!args.valueDouble(cfg.arrival_rate_hz))
                return usage(argv[0]);
        } else if (args.is("--matcher")) {
            const char *v = args.value();
            if (!v ||
                !psm::serve::parseMatcherKind(v, cfg.matcher.kind)) {
                std::cerr << "error: --matcher needs rete, treat, "
                             "naive, fullstate, or parallel\n";
                return 2;
            }
        } else if (args.is("--workers")) {
            if (!args.valueSize(cfg.matcher.workers))
                return usage(argv[0]);
        } else if (args.is("--scheduler")) {
            if (!psm::cli::parseSchedulerKind(args.value(),
                                              cfg.matcher.scheduler)) {
                std::cerr << "error: --scheduler needs central, "
                             "stealing, or lockfree\n";
                return 2;
            }
        } else if (args.is("--queue-capacity")) {
            if (!args.valueSize(cfg.queue_capacity))
                return usage(argv[0]);
        } else if (args.is("--shed-watermark")) {
            if (!args.valueSize(cfg.shed_watermark))
                return usage(argv[0]);
        } else if (args.is("--max-batch")) {
            if (!args.valueSize(cfg.max_batch))
                return usage(argv[0]);
        } else if (args.is("--json")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            json_path = v;
        } else if (args.is("--metrics")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            metrics_path = v;
        } else if (args.is("--stats-host")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            stats_host = v;
        } else if (args.is("--stats-port")) {
            if (!args.valueUint(stats_port) || stats_port > 65535)
                return usage(argv[0]);
            stats_port_set = true;
        } else if (args.is("--metrics-interval")) {
            if (!args.valueUint(metrics_interval_s) ||
                metrics_interval_s == 0)
                return usage(argv[0]);
        } else if (args.is("--flight-recorder")) {
            const char *v = args.value();
            if (!v)
                return usage(argv[0]);
            flight_path = v;
        } else {
            return usage(argv[0]);
        }
    }
    if (deadline_us > 0)
        cfg.deadline = std::chrono::microseconds(deadline_us);
    cfg.durability = durable_flags.options;
    cfg.restore = durable_flags.restore;
    if (recover_check && !cfg.durability.enabled()) {
        std::cerr << "error: --recover-check needs --snapshot-dir\n";
        return 2;
    }

    try {
        std::shared_ptr<const psm::ops5::Program> program;
        std::string workload_name;
        if (!program_path.empty()) {
            psm::ops5::ParsedProgram parsed;
            if (!psm::cli::loadProgramFile(program_path, parsed))
                return 2;
            program = parsed.program;
            workload_name = program_path;
        } else {
            psm::workloads::SystemPreset preset =
                preset_name == "tiny"
                    ? psm::workloads::tinyPreset()
                    : psm::workloads::presetByName(preset_name);
            program = psm::workloads::generateProgram(preset.config);
            workload_name = "preset:" + preset.name;
        }

        // Verify recovery determinism against the raw on-disk state
        // BEFORE the pool opens it (begin() truncates torn tails).
        if (recover_check &&
            !recoverCheck(program, cfg.durability.dir, cfg.sessions))
            return 1;

        // Observability plane: the crash flight recorder is armed
        // before the pool exists (recovery already records events);
        // the hub + stats server attach to the pool's registry in
        // on_start and detach in inspect, while the pool is alive.
        if (!flight_path.empty())
            psm::obs::FlightRecorder::instance().installCrashDump(
                flight_path.c_str());
        std::unique_ptr<psm::obs::MetricsHub> hub;
        std::unique_ptr<psm::obs::StatsServer> stats_server;
        const bool want_hub = stats_port_set ||
                              metrics_interval_s > 0 ||
                              !flight_path.empty();

        auto on_start = [&](psm::serve::SessionPool &pool) {
            if (!want_hub)
                return;
            psm::obs::HubOptions hopts;
            if (metrics_interval_s > 0) {
                hopts.dump_to = &std::cerr;
                hopts.dump_every_ticks = metrics_interval_s;
            }
            hopts.flight_path = flight_path;
            hub = std::make_unique<psm::obs::MetricsHub>(
                pool.metrics(), hopts);
            hub->setExtraJson([&pool] {
                std::ostringstream os;
                pool.writeSessionStatsJson(os);
                return os.str();
            });
            hub->setExtraExposition([&pool](std::ostream &os) {
                pool.writeSessionExposition(os, "psm");
            });
            hub->start();
            if (stats_port_set) {
                psm::obs::StatsServerOptions sopts;
                sopts.port = static_cast<std::uint16_t>(stats_port);
                sopts.bind_addr = stats_host;
                stats_server = std::make_unique<psm::obs::StatsServer>(
                    *hub, sopts);
                if (stats_server->start()) {
                    std::printf("stats server:    http://%s:%u"
                                "  (/metrics, /stats.json)\n",
                                stats_host.c_str(),
                                stats_server->port());
                    std::fflush(stdout);
                } else {
                    std::cerr << "warning: stats server: "
                              << stats_server->error() << "\n";
                    stats_server.reset();
                }
            }
        };

        std::size_t recovered_sessions = 0;
        std::uint64_t wal_replayed = 0;
        psm::serve::LoadResult r = psm::serve::runLoad(
            program, cfg,
            [&](psm::serve::SessionPool &pool) {
                // Last scrapeable moment: drain is done, pool still
                // alive. Stop the server before the hub it reads.
                stats_server.reset();
                hub.reset();
                for (std::size_t i = 0; i < pool.sessionCount(); ++i) {
                    const auto &rs = pool.recoveryStats(i);
                    if (rs.recovered)
                        ++recovered_sessions;
                    wal_replayed += rs.wal_records_replayed;
                }
                if (metrics_path.empty())
                    return;
                std::ofstream out(metrics_path);
                if (!out)
                    throw std::runtime_error("cannot write " +
                                             metrics_path);
                pool.metrics().writeJson(out);
            },
            on_start);

        if (!flight_path.empty()) {
            psm::obs::flightRecord(
                psm::obs::FlightEvent::CleanShutdown);
            psm::obs::FlightRecorder::instance().dumpToFile(
                flight_path.c_str(), "clean_shutdown");
            std::printf("flight recorder: %s\n", flight_path.c_str());
        }

        std::printf("workload:        %s\n", workload_name.c_str());
        std::printf("matcher:         %s\n",
                    psm::serve::matcherKindName(cfg.matcher.kind));
        std::printf("sessions:        %zu  (threads %zu, clients/s %zu)\n",
                    cfg.sessions, cfg.threads, cfg.clients_per_session);
        std::printf("elapsed:         %.3f s\n", r.elapsed_seconds);
        std::printf("completed:       %llu  (expired %llu)\n",
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.expired));
        std::printf("rejected:        %llu  (full %llu, overload %llu, "
                    "shutdown %llu)\n",
                    static_cast<unsigned long long>(r.rejected),
                    static_cast<unsigned long long>(r.pool.rejected_full),
                    static_cast<unsigned long long>(
                        r.pool.rejected_overload),
                    static_cast<unsigned long long>(
                        r.pool.rejected_shutdown));
        std::printf("batches:         %llu\n",
                    static_cast<unsigned long long>(r.pool.batches));
        std::printf("throughput:      %.0f req/s  (%.0f wme-changes/s)\n",
                    r.requests_per_sec, r.wme_changes_per_sec);
        std::printf("latency (us):    p50 %.1f  p95 %.1f  p99 %.1f  "
                    "max %.1f\n",
                    r.p50_us, r.p95_us, r.p99_us, r.max_us);
        if (cfg.durability.enabled())
            std::printf("durability:      %s (wal %s); recovered "
                        "%zu/%zu sessions, %llu WAL records replayed\n",
                        cfg.durability.dir.c_str(),
                        psm::durable::fsyncPolicyName(
                            cfg.durability.fsync),
                        recovered_sessions, cfg.sessions,
                        static_cast<unsigned long long>(wal_replayed));
        if (!metrics_path.empty())
            std::printf("metrics saved:   %s\n", metrics_path.c_str());

        if (!json_path.empty()) {
            psm::bench::JsonResult json("serve_cli");
            json.config("workload", workload_name);
            json.config("matcher", psm::serve::matcherKindName(
                                       cfg.matcher.kind));
            json.config("sessions", static_cast<double>(cfg.sessions));
            json.config("threads", static_cast<double>(cfg.threads));
            json.config("clients_per_session",
                        static_cast<double>(cfg.clients_per_session));
            json.config("iterations",
                        static_cast<double>(cfg.iterations));
            json.config("asserts_per_iteration",
                        static_cast<double>(cfg.asserts_per_iteration));
            json.config("run_cycles",
                        static_cast<double>(cfg.run_cycles));
            json.config("deadline_us",
                        static_cast<double>(deadline_us));
            json.config("arrival_rate_hz", cfg.arrival_rate_hz);
            json.beginRow();
            json.col("name", std::string("load"));
            json.col("elapsed_seconds", r.elapsed_seconds);
            json.col("completed", static_cast<double>(r.completed));
            json.col("rejected", static_cast<double>(r.rejected));
            json.col("expired", static_cast<double>(r.expired));
            json.col("batches",
                     static_cast<double>(r.pool.batches));
            json.col("requests_per_sec", r.requests_per_sec);
            json.col("wme_changes_per_sec", r.wme_changes_per_sec);
            json.col("p50_us", r.p50_us);
            json.col("p95_us", r.p95_us);
            json.col("p99_us", r.p99_us);
            json.col("max_us", r.max_us);
            json.metric("requests_per_sec", r.requests_per_sec);
            json.metric("p99_us", r.p99_us);
            if (!json.save(json_path))
                return 1;
            std::printf("json saved:      %s\n", json_path.c_str());
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
