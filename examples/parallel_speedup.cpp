/**
 * @file
 * Fine-grain parallel match on real host threads, plus the simulated
 * Production System Machine, side by side.
 *
 * Part 1 runs the same change stream through the serial Rete matcher
 * and the parallel matcher at several worker counts, reporting
 * wall-clock match throughput (bounded by the host's cores — the
 * reason the paper simulates a 32-processor machine instead).
 *
 * Part 2 feeds a captured activation trace of the same workload to
 * the PSM simulator and prints the concurrency curve of Figure 6-1
 * for this workload.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/parallel_matcher.hpp"
#include "psm/analysis.hpp"
#include "psm/capture.hpp"
#include "rete/matcher.hpp"
#include "workloads/presets.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
runMatcher(psm::core::Matcher &matcher,
           const psm::workloads::SystemPreset &preset,
           std::shared_ptr<psm::ops5::Program> program, int batches)
{
    psm::ops5::WorkingMemory wm;
    psm::workloads::ChangeStream stream(*program, wm, preset.config,
                                        42);
    // Pre-generate all batches so generation cost stays out of the
    // timed region.
    std::vector<std::vector<psm::ops5::WmeChange>> work;
    for (int b = 0; b < batches; ++b)
        work.push_back(
            stream.nextBatch(preset.changes_per_firing, 0.5));

    auto t0 = Clock::now();
    for (const auto &batch : work)
        matcher.processChanges(batch);
    double secs = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    std::uint64_t changes = 0;
    for (const auto &batch : work)
        changes += batch.size();
    return static_cast<double>(changes) / secs;
}

} // namespace

int
main()
{
    const auto &preset = psm::workloads::presetByName("daa");
    const int batches = 400;

    std::printf("workload: synthetic '%s' (%d productions)\n",
                preset.name.c_str(), preset.config.n_productions);

    // --- Part 1: real threads -----------------------------------------
    auto program = psm::workloads::generateProgram(preset.config);
    psm::rete::ReteMatcher serial(program);
    double serial_rate = runMatcher(serial, preset, program, batches);
    std::printf("\nreal host threads (wall clock):\n");
    std::printf("  %-28s %12.0f wme-changes/sec\n",
                "serial rete (shared net)", serial_rate);

    unsigned hc = std::thread::hardware_concurrency();
    for (std::size_t workers :
         {std::size_t{0}, std::size_t{1}, std::size_t{3},
          std::size_t{hc > 1 ? hc - 1 : 1}}) {
        auto prog = psm::workloads::generateProgram(preset.config);
        psm::core::ParallelOptions opt;
        opt.n_workers = workers;
        psm::core::ParallelReteMatcher par(prog, opt);
        double rate = runMatcher(par, preset, prog, batches);
        std::printf("  parallel rete, %2zu workers   %12.0f "
                    "wme-changes/sec (%.2fx serial)\n",
                    workers + 1, rate, rate / serial_rate);
    }

    // --- Part 2: the simulated 32-processor PSM ------------------------
    std::printf("\nsimulated Production System Machine (2 MIPS "
                "processors):\n");
    auto fresh = psm::workloads::generateProgram(preset.config);
    auto captured = psm::sim::captureStreamRun(
        fresh, preset.config, 42, 200, preset.changes_per_firing, 0.5);
    psm::sim::Simulator sim(captured.trace);
    for (int procs : {1, 2, 4, 8, 16, 32, 64}) {
        psm::sim::MachineConfig m;
        m.n_processors = procs;
        auto r = sim.run(m);
        auto ts = psm::sim::trueSpeedup(captured, r, m);
        std::printf("  P=%-3d concurrency %6.2f   %8.0f "
                    "wme-changes/sec   true speed-up %5.2f\n",
                    procs, r.concurrency, r.wme_changes_per_sec,
                    ts.true_speedup);
    }
    return 0;
}
