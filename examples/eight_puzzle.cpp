/**
 * @file
 * Eight-puzzle in OPS5 rules — the domain behind the paper's
 * Eight-Puzzle-Soar workload (Section 6).
 *
 * Cells are numbered row-major 0..8. A tile may slide into the blank
 * cell when they are adjacent; this solver uses the greedy strategy
 * of only sliding a tile whose GOAL cell is the current blank cell,
 * so every move puts one tile into its final place. The initial
 * arrangement is a rotation along a Hamiltonian path of the grid, so
 * the greedy chain solves it in exactly eight moves.
 */

#include <iostream>
#include <sstream>

#include "core/engine.hpp"
#include "ops5/parser.hpp"
#include "rete/matcher.hpp"

namespace {

constexpr const char *kRules = R"(
(literalize tile id at goal)
(literalize blank at)
(literalize adj a b)

; Slide a misplaced tile into the blank when the blank IS its goal
; cell: the move finishes that tile for good.
(p place-tile
    (blank ^at <b>)
    (tile ^id <t> ^at <p> ^goal <b>)
    (adj ^a <b> ^b <p>)
    -->
    (write move tile <t> from <p> to <b>)
    (modify 2 ^at <b>)
    (modify 1 ^at <p>))

; Solved: the blank is home and no tile sits off its goal cell.
(p solved
    (blank ^at 8)
    -(tile ^goal <g> ^at <> <g>)
    -->
    (write solved)
    (halt))
)";

/** Emits the 12 grid adjacencies, both directions. */
std::string
gridAdjacency()
{
    std::ostringstream os;
    auto edge = [&](int a, int b) {
        os << "(make adj ^a " << a << " ^b " << b << ")\n"
           << "(make adj ^a " << b << " ^b " << a << ")\n";
    };
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            int cell = r * 3 + c;
            if (c < 2)
                edge(cell, cell + 1);
            if (r < 2)
                edge(cell, cell + 3);
        }
    }
    return os.str();
}

/**
 * Initial state: rotate the solved configuration one step along the
 * Hamiltonian path 0-1-2-5-4-3-6-7-8. Tile i's goal cell is i-1;
 * tile at path[k+1] has its goal at path[k], so the blank (starting
 * at cell 0) pulls the whole chain through in eight moves.
 */
std::string
initialState()
{
    const int path[9] = {0, 1, 2, 5, 4, 3, 6, 7, 8};
    std::ostringstream os;
    os << "(make blank ^at 0)\n";
    for (int k = 0; k + 1 < 9; ++k) {
        int goal_cell = path[k];
        int start_cell = path[k + 1];
        int tile_id = goal_cell + 1; // tile i belongs on cell i-1
        os << "(make tile ^id " << tile_id << " ^at " << start_cell
           << " ^goal " << goal_cell << ")\n";
    }
    return os.str();
}

} // namespace

int
main()
{
    std::string source =
        std::string(kRules) + gridAdjacency() + initialState();
    auto program = psm::ops5::parse(source);

    psm::rete::ReteMatcher matcher(program);
    psm::core::Engine engine(program, matcher);
    engine.setOutput(&std::cout);
    engine.loadInitialWorkingMemory();

    psm::core::RunResult result = engine.run(100);
    std::cout << "firings: " << result.firings
              << " (8 moves + 1 solved check expected)\n";
    if (!result.halted) {
        std::cout << "puzzle NOT solved\n";
        return 1;
    }
    return 0;
}
