/**
 * @file
 * psm_sim_cli: run the Production System Machine simulator over a
 * saved activation trace (see ops5_cli --trace).
 *
 *     psm_sim_cli <trace-file> [options]
 *
 * Options:
 *     --procs N            processors (default 32)
 *     --mips X             per-processor MIPS (default 2.0)
 *     --software-queues N  software scheduler with N queues
 *                          (default: hardware scheduler)
 *     --scheduler K        scheduler model: hardware | software |
 *                          lockfree (lock-free software deques:
 *                          constant dispatch cost, no serialisation)
 *     --clusters N         hierarchical clusters (default 1)
 *     --latency X          inter-cluster latency, instructions
 *     --sweep              sweep processors 1..64 instead
 *     --merge K            merge every K cycles (parallel firings)
 *     --spans FILE         write the schedule as CSV (id,start,end,
 *                          cluster) for timeline plotting
 *     --chrome-trace FILE  write the simulated schedule as a
 *                          Chrome/Perfetto trace (simulated
 *                          instructions scaled to microseconds by
 *                          --mips)
 *     --json FILE          write the results as JSON ({bench, config,
 *                          rows, metrics}, same shape as the bench
 *                          binaries' --json)
 *     --profile [N]        print an N-bucket ASCII concurrency
 *                          profile of the schedule (default 64)
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "psm/simulator.hpp"
#include "psm/trace_io.hpp"
#include "rete/trace_export.hpp"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <trace-file> [--procs N] [--mips X] "
                 "[--software-queues N]\n"
                 "       [--scheduler hardware|software|lockfree]\n"
                 "       [--clusters N] [--latency X] [--sweep] "
                 "[--merge K] [--spans FILE]\n"
                 "       [--chrome-trace FILE] [--json FILE] "
                 "[--profile [N]]\n",
                 argv0);
    return 1;
}

const char *
schedulerName(psm::sim::SchedulerModel m)
{
    switch (m) {
      case psm::sim::SchedulerModel::Hardware: return "hardware";
      case psm::sim::SchedulerModel::Software: return "software";
      case psm::sim::SchedulerModel::LockFree: return "lockfree";
    }
    return "unknown";
}

using psm::cli::jsonQuote;

/** One sweep row for --json (empty in single-run mode). */
struct SweepRow
{
    int procs;
    psm::sim::SimResult r;
};

/** Writes {bench, config, rows, metrics} like the bench binaries. */
bool
writeJsonFile(const std::string &path, const std::string &trace_path,
              const psm::sim::MachineConfig &machine, int merge,
              const std::vector<SweepRow> &rows,
              const psm::sim::SimResult *single)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"bench\": \"psm_sim_cli\",\n  \"config\": {"
        << "\"trace\": " << jsonQuote(trace_path)
        << ", \"procs\": " << machine.n_processors
        << ", \"mips\": " << machine.mips << ", \"scheduler\": \""
        << schedulerName(machine.scheduler) << '"'
        << ", \"software_queues\": " << machine.n_software_queues
        << ", \"clusters\": " << machine.n_clusters
        << ", \"latency_instr\": " << machine.inter_cluster_latency_instr
        << ", \"merge\": " << merge << "},\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const psm::sim::SimResult &r = rows[i].r;
        out << (i ? ",\n    " : "\n    ") << "{\"procs\": "
            << rows[i].procs << ", \"concurrency\": " << r.concurrency
            << ", \"wme_changes_per_sec\": " << r.wme_changes_per_sec
            << ", \"bus_utilization\": " << r.bus_utilization << "}";
    }
    out << (rows.empty() ? "],\n  \"metrics\": {" :
                           "\n  ],\n  \"metrics\": {");
    if (single) {
        const psm::sim::SimResult &r = *single;
        out << "\"activations\": " << r.n_activations
            << ", \"wme_changes\": " << r.n_changes
            << ", \"cycles\": " << r.n_cycles
            << ", \"makespan_instr\": " << r.makespan_instr
            << ", \"seconds\": " << r.seconds
            << ", \"concurrency\": " << r.concurrency
            << ", \"wme_changes_per_sec\": " << r.wme_changes_per_sec
            << ", \"cycles_per_sec\": " << r.cycles_per_sec
            << ", \"bus_utilization\": " << r.bus_utilization
            << ", \"contention_slowdown\": " << r.contention_slowdown;
    }
    out << "}\n}\n";
    return static_cast<bool>(out);
}

void
printResult(const psm::sim::SimResult &r)
{
    std::printf("  activations:        %llu\n",
                static_cast<unsigned long long>(r.n_activations));
    std::printf("  wme changes:        %llu over %llu cycles\n",
                static_cast<unsigned long long>(r.n_changes),
                static_cast<unsigned long long>(r.n_cycles));
    std::printf("  makespan:           %.0f instr (%.6f s)\n",
                r.makespan_instr, r.seconds);
    std::printf("  concurrency:        %.2f processors busy\n",
                r.concurrency);
    std::printf("  speed:              %.0f wme-changes/sec, %.0f "
                "cycles/sec\n",
                r.wme_changes_per_sec, r.cycles_per_sec);
    std::printf("  bus utilisation:    %.2f (slowdown %.2f)\n",
                r.bus_utilization, r.contention_slowdown);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    psm::sim::MachineConfig machine;
    bool sweep = false;
    int merge = 1;
    int profile_buckets = 0;
    std::string spans_path, chrome_path, json_path;

    psm::cli::ArgReader args(argc, argv, 2);
    while (args.next()) {
        double v = 0;
        if (args.is("--procs") && args.valueDouble(v)) {
            machine.n_processors = static_cast<int>(v);
        } else if (args.is("--mips") && args.valueDouble(v)) {
            machine.mips = v;
        } else if (args.is("--software-queues") &&
                   args.valueDouble(v)) {
            machine.scheduler = psm::sim::SchedulerModel::Software;
            machine.n_software_queues = static_cast<int>(v);
        } else if (args.is("--clusters") && args.valueDouble(v)) {
            machine.n_clusters = static_cast<int>(v);
        } else if (args.is("--latency") && args.valueDouble(v)) {
            machine.inter_cluster_latency_instr = v;
        } else if (args.is("--merge") && args.valueDouble(v)) {
            merge = static_cast<int>(v);
        } else if (args.is("--spans") && args.peek()) {
            spans_path = args.value();
        } else if (args.is("--chrome-trace") && args.peek()) {
            chrome_path = args.value();
        } else if (args.is("--json") && args.peek()) {
            json_path = args.value();
        } else if (args.is("--scheduler") && args.peek()) {
            std::string kind = args.value();
            if (kind == "hardware") {
                machine.scheduler = psm::sim::SchedulerModel::Hardware;
            } else if (kind == "software") {
                machine.scheduler = psm::sim::SchedulerModel::Software;
            } else if (kind == "lockfree") {
                machine.scheduler = psm::sim::SchedulerModel::LockFree;
            } else {
                std::fprintf(stderr,
                             "error: --scheduler needs hardware, "
                             "software, or lockfree\n");
                return 2;
            }
        } else if (args.is("--profile")) {
            profile_buckets = 64;
            // A bucket-count operand is anything that does not look
            // like the next flag; "-3" is a (bad) count, not a flag.
            const char *peeked = args.peek();
            if (peeked &&
                (peeked[0] != '-' ||
                 std::isdigit(
                     static_cast<unsigned char>(peeked[1])))) {
                // Validated parse: 0, negative, or trailing garbage
                // used to be silently accepted via atoi.
                char *end = nullptr;
                long v_long = std::strtol(args.value(), &end, 10);
                if (end == nullptr || *end != '\0' || v_long <= 0 ||
                    v_long > 1000000) {
                    std::fprintf(stderr,
                                 "error: --profile needs a positive "
                                 "integer bucket count\n");
                    std::exit(2);
                }
                profile_buckets = static_cast<int>(v_long);
            }
        } else if (args.is("--sweep")) {
            sweep = true;
        } else {
            return usage(argv[0]);
        }
    }

    try {
        psm::rete::TraceRecorder trace =
            psm::sim::loadTraceFile(argv[1]);
        if (merge > 1)
            trace = psm::sim::mergeCycles(trace, merge);
        psm::sim::Simulator simulator(trace);

        if (sweep) {
            std::vector<SweepRow> rows;
            std::printf("%8s %12s %14s %14s\n", "procs", "concurrency",
                        "wme-chg/sec", "bus util");
            for (int p : {1, 2, 4, 8, 16, 24, 32, 48, 64}) {
                psm::sim::MachineConfig m = machine;
                m.n_processors = p;
                psm::sim::SimResult r = simulator.run(m);
                std::printf("%8d %12.2f %14.0f %14.2f\n", p,
                            r.concurrency, r.wme_changes_per_sec,
                            r.bus_utilization);
                rows.push_back({p, r});
            }
            if (!json_path.empty() &&
                !writeJsonFile(json_path, argv[1], machine, merge, rows,
                               nullptr)) {
                std::fprintf(stderr, "error: failed writing %s\n",
                             json_path.c_str());
                return 1;
            }
        } else {
            std::printf("machine: %d procs x %.1f MIPS, %s scheduler, "
                        "%d cluster(s)\n",
                        machine.n_processors, machine.mips,
                        schedulerName(machine.scheduler),
                        machine.n_clusters);
            bool want_spans = !spans_path.empty() ||
                              !chrome_path.empty() ||
                              profile_buckets > 0;
            std::vector<psm::sim::TaskSpan> spans;
            psm::sim::SimResult result =
                want_spans ? simulator.run(machine, spans)
                           : simulator.run(machine);
            printResult(result);
            {
                if (!spans_path.empty()) {
                    std::ofstream out(spans_path);
                    out << "activation_id,start,end,cluster\n";
                    for (const auto &s : spans) {
                        out << s.activation_id << "," << s.start << ","
                            << s.end << "," << s.cluster << "\n";
                    }
                    std::printf("  schedule spans:     %zu rows -> "
                                "%s\n",
                                spans.size(), spans_path.c_str());
                }
                if (!chrome_path.empty()) {
                    // Simulated instructions -> microseconds at the
                    // configured MIPS (1 instr = 1/mips us), so real
                    // and simulated traces share a time axis.
                    auto events = psm::rete::chromeEventsFromSim(
                        trace, spans, 1.0 / machine.mips);
                    if (psm::rete::saveChromeTrace(chrome_path, events))
                        std::printf("  chrome trace:       %zu events "
                                    "-> %s\n",
                                    events.size(), chrome_path.c_str());
                    else {
                        std::fprintf(stderr,
                                     "error: failed writing %s\n",
                                     chrome_path.c_str());
                        return 1;
                    }
                }
                if (profile_buckets > 0 && !spans.empty()) {
                    // Concurrency-over-time profile: busy processor
                    // time aggregated into equal buckets.
                    double horizon = 0;
                    for (const auto &s : spans)
                        horizon = std::max(horizon, s.end);
                    std::vector<double> busy(
                        static_cast<std::size_t>(profile_buckets), 0.0);
                    double width = horizon / profile_buckets;
                    for (const auto &s : spans) {
                        int b0 = static_cast<int>(s.start / width);
                        int b1 = static_cast<int>(s.end / width);
                        for (int b = b0; b <= b1 &&
                                         b < profile_buckets; ++b) {
                            double lo = std::max(s.start, b * width);
                            double hi =
                                std::min(s.end, (b + 1) * width);
                            if (hi > lo)
                                busy[static_cast<std::size_t>(b)] +=
                                    hi - lo;
                        }
                    }
                    double peak = 0;
                    for (double &v : busy) {
                        v /= width; // average busy processors
                        peak = std::max(peak, v);
                    }
                    static const char *glyphs[] = {" ", ".", ":", "-",
                                                   "=", "+", "*", "#"};
                    std::printf("  concurrency profile (peak %.1f "
                                "busy):\n  |",
                                peak);
                    for (double v : busy) {
                        int g = peak > 0 ? static_cast<int>(
                                               v / peak * 7.0)
                                         : 0;
                        std::printf("%s", glyphs[g]);
                    }
                    std::printf("|\n");
                }
            }
            if (!json_path.empty() &&
                !writeJsonFile(json_path, argv[1], machine, merge, {},
                               &result)) {
                std::fprintf(stderr, "error: failed writing %s\n",
                             json_path.c_str());
                return 1;
            }
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
