/**
 * @file
 * network_info: prints Rete network statistics for each paper-system
 * preset — node counts by kind, sharing factors, and the cost of
 * giving sharing up — the measurements behind Sections 3 and 6.
 *
 * Usage: network_info [preset-name ...]   (default: all six)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "rete/network.hpp"
#include "workloads/generator.hpp"
#include "workloads/presets.hpp"

namespace {

void
report(const psm::workloads::SystemPreset &preset)
{
    auto program = psm::workloads::generateProgram(preset.config);
    psm::rete::Network shared(program,
                              psm::rete::NetworkOptions::fullSharing());
    psm::rete::Network priv(program,
                            psm::rete::NetworkOptions::privateState());

    const auto &s = shared.buildStats();
    const auto &p = priv.buildStats();

    std::printf("%s (%zu productions)\n", preset.name.c_str(),
                program->productions().size());
    std::printf("  %-22s %10s %10s\n", "", "shared", "private");
    auto row = [](const char *name, int a, int b) {
        std::printf("  %-22s %10d %10d\n", name, a, b);
    };
    row("constant-test nodes", s.const_tests, p.const_tests);
    row("alpha memories", s.alpha_memories, p.alpha_memories);
    row("join nodes", s.joins, p.joins);
    row("not nodes", s.nots, p.nots);
    row("beta memories", s.beta_memories, p.beta_memories);
    row("terminal nodes", s.terminals, p.terminals);
    row("total nodes", s.total(), p.total());
    std::printf("  %-22s %10d %10s\n", "reused const tests",
                s.reused_const_tests, "-");
    std::printf("  %-22s %10d %10s\n", "reused alpha memories",
                s.reused_alpha_memories, "-");
    std::printf("  %-22s %10d %10s\n", "reused two-input",
                s.reused_two_input, "-");

    // How many nodes serve more than one production (the sharing the
    // parallel implementation gives up).
    int multi_owner = 0;
    for (const auto &node : shared.nodes()) {
        if (shared.productionsOf(node->id).size() > 1)
            ++multi_owner;
    }
    std::printf("  %-22s %9.1f%%\n\n", "nodes shared by >1 prod",
                100.0 * multi_owner / shared.nodes().size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);

    if (names.empty()) {
        for (const auto &preset : psm::workloads::paperSystems())
            report(preset);
        return 0;
    }
    for (const std::string &name : names) {
        try {
            report(psm::workloads::presetByName(name));
        } catch (const std::out_of_range &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    return 0;
}
