# Empty dependencies file for bench_real_parallel.
# This may be replaced when dependencies are built.
