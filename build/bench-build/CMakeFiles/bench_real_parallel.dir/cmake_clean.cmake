file(REMOVE_RECURSE
  "../bench/bench_real_parallel"
  "../bench/bench_real_parallel.pdb"
  "CMakeFiles/bench_real_parallel.dir/bench_real_parallel.cpp.o"
  "CMakeFiles/bench_real_parallel.dir/bench_real_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
