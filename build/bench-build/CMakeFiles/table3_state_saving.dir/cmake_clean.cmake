file(REMOVE_RECURSE
  "../bench/table3_state_saving"
  "../bench/table3_state_saving.pdb"
  "CMakeFiles/table3_state_saving.dir/table3_state_saving.cpp.o"
  "CMakeFiles/table3_state_saving.dir/table3_state_saving.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_state_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
