# Empty dependencies file for table3_state_saving.
# This may be replaced when dependencies are built.
