# Empty dependencies file for table7_architectures.
# This may be replaced when dependencies are built.
