file(REMOVE_RECURSE
  "../bench/table7_architectures"
  "../bench/table7_architectures.pdb"
  "CMakeFiles/table7_architectures.dir/table7_architectures.cpp.o"
  "CMakeFiles/table7_architectures.dir/table7_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
