file(REMOVE_RECURSE
  "../bench/table12_hash_ablation"
  "../bench/table12_hash_ablation.pdb"
  "CMakeFiles/table12_hash_ablation.dir/table12_hash_ablation.cpp.o"
  "CMakeFiles/table12_hash_ablation.dir/table12_hash_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_hash_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
