# Empty compiler generated dependencies file for table12_hash_ablation.
# This may be replaced when dependencies are built.
