# Empty dependencies file for table6_true_speedup.
# This may be replaced when dependencies are built.
