file(REMOVE_RECURSE
  "../bench/table6_true_speedup"
  "../bench/table6_true_speedup.pdb"
  "CMakeFiles/table6_true_speedup.dir/table6_true_speedup.cpp.o"
  "CMakeFiles/table6_true_speedup.dir/table6_true_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_true_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
