file(REMOVE_RECURSE
  "../bench/table9_extensions"
  "../bench/table9_extensions.pdb"
  "CMakeFiles/table9_extensions.dir/table9_extensions.cpp.o"
  "CMakeFiles/table9_extensions.dir/table9_extensions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
