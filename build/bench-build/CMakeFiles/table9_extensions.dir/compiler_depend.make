# Empty compiler generated dependencies file for table9_extensions.
# This may be replaced when dependencies are built.
