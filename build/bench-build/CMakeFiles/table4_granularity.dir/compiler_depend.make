# Empty compiler generated dependencies file for table4_granularity.
# This may be replaced when dependencies are built.
