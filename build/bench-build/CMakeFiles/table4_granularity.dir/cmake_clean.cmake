file(REMOVE_RECURSE
  "../bench/table4_granularity"
  "../bench/table4_granularity.pdb"
  "CMakeFiles/table4_granularity.dir/table4_granularity.cpp.o"
  "CMakeFiles/table4_granularity.dir/table4_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
