# Empty dependencies file for table2_serial_ladder.
# This may be replaced when dependencies are built.
