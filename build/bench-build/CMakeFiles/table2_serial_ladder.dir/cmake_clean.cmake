file(REMOVE_RECURSE
  "../bench/table2_serial_ladder"
  "../bench/table2_serial_ladder.pdb"
  "CMakeFiles/table2_serial_ladder.dir/table2_serial_ladder.cpp.o"
  "CMakeFiles/table2_serial_ladder.dir/table2_serial_ladder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_serial_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
