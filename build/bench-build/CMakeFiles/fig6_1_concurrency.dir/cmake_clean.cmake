file(REMOVE_RECURSE
  "../bench/fig6_1_concurrency"
  "../bench/fig6_1_concurrency.pdb"
  "CMakeFiles/fig6_1_concurrency.dir/fig6_1_concurrency.cpp.o"
  "CMakeFiles/fig6_1_concurrency.dir/fig6_1_concurrency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
