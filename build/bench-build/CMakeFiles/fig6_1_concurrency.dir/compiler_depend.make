# Empty compiler generated dependencies file for fig6_1_concurrency.
# This may be replaced when dependencies are built.
