file(REMOVE_RECURSE
  "../bench/fig6_2_speed"
  "../bench/fig6_2_speed.pdb"
  "CMakeFiles/fig6_2_speed.dir/fig6_2_speed.cpp.o"
  "CMakeFiles/fig6_2_speed.dir/fig6_2_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
