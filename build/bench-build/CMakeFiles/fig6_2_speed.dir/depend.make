# Empty dependencies file for fig6_2_speed.
# This may be replaced when dependencies are built.
