file(REMOVE_RECURSE
  "../bench/table8_sensitivity"
  "../bench/table8_sensitivity.pdb"
  "CMakeFiles/table8_sensitivity.dir/table8_sensitivity.cpp.o"
  "CMakeFiles/table8_sensitivity.dir/table8_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
