# Empty dependencies file for table8_sensitivity.
# This may be replaced when dependencies are built.
