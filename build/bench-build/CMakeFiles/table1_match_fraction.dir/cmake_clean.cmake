file(REMOVE_RECURSE
  "../bench/table1_match_fraction"
  "../bench/table1_match_fraction.pdb"
  "CMakeFiles/table1_match_fraction.dir/table1_match_fraction.cpp.o"
  "CMakeFiles/table1_match_fraction.dir/table1_match_fraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_match_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
