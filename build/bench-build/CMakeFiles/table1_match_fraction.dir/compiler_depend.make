# Empty compiler generated dependencies file for table1_match_fraction.
# This may be replaced when dependencies are built.
