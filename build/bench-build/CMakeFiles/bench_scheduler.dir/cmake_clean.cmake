file(REMOVE_RECURSE
  "../bench/bench_scheduler"
  "../bench/bench_scheduler.pdb"
  "CMakeFiles/bench_scheduler.dir/bench_scheduler.cpp.o"
  "CMakeFiles/bench_scheduler.dir/bench_scheduler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
