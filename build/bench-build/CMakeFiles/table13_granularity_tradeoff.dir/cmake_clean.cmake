file(REMOVE_RECURSE
  "../bench/table13_granularity_tradeoff"
  "../bench/table13_granularity_tradeoff.pdb"
  "CMakeFiles/table13_granularity_tradeoff.dir/table13_granularity_tradeoff.cpp.o"
  "CMakeFiles/table13_granularity_tradeoff.dir/table13_granularity_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_granularity_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
