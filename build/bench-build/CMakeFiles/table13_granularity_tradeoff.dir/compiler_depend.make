# Empty compiler generated dependencies file for table13_granularity_tradeoff.
# This may be replaced when dependencies are built.
