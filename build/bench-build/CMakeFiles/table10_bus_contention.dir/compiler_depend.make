# Empty compiler generated dependencies file for table10_bus_contention.
# This may be replaced when dependencies are built.
