file(REMOVE_RECURSE
  "../bench/table10_bus_contention"
  "../bench/table10_bus_contention.pdb"
  "CMakeFiles/table10_bus_contention.dir/table10_bus_contention.cpp.o"
  "CMakeFiles/table10_bus_contention.dir/table10_bus_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_bus_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
