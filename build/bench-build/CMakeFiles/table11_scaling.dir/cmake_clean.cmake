file(REMOVE_RECURSE
  "../bench/table11_scaling"
  "../bench/table11_scaling.pdb"
  "CMakeFiles/table11_scaling.dir/table11_scaling.cpp.o"
  "CMakeFiles/table11_scaling.dir/table11_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
