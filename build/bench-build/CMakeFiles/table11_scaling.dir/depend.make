# Empty dependencies file for table11_scaling.
# This may be replaced when dependencies are built.
