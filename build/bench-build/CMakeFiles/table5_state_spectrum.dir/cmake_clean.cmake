file(REMOVE_RECURSE
  "../bench/table5_state_spectrum"
  "../bench/table5_state_spectrum.pdb"
  "CMakeFiles/table5_state_spectrum.dir/table5_state_spectrum.cpp.o"
  "CMakeFiles/table5_state_spectrum.dir/table5_state_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_state_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
