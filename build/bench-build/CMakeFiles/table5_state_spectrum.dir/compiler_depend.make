# Empty compiler generated dependencies file for table5_state_spectrum.
# This may be replaced when dependencies are built.
