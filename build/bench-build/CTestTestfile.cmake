# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig6_1_concurrency "/root/repo/build/bench/fig6_1_concurrency")
set_tests_properties(bench_smoke_fig6_1_concurrency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table6_true_speedup "/root/repo/build/bench/table6_true_speedup")
set_tests_properties(bench_smoke_table6_true_speedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table7_architectures "/root/repo/build/bench/table7_architectures")
set_tests_properties(bench_smoke_table7_architectures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table11_scaling "/root/repo/build/bench/table11_scaling")
set_tests_properties(bench_smoke_table11_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
