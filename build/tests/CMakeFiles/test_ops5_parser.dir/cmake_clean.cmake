file(REMOVE_RECURSE
  "CMakeFiles/test_ops5_parser.dir/test_ops5_parser.cpp.o"
  "CMakeFiles/test_ops5_parser.dir/test_ops5_parser.cpp.o.d"
  "test_ops5_parser"
  "test_ops5_parser.pdb"
  "test_ops5_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops5_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
