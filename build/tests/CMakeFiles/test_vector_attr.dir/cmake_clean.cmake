file(REMOVE_RECURSE
  "CMakeFiles/test_vector_attr.dir/test_vector_attr.cpp.o"
  "CMakeFiles/test_vector_attr.dir/test_vector_attr.cpp.o.d"
  "test_vector_attr"
  "test_vector_attr.pdb"
  "test_vector_attr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_attr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
