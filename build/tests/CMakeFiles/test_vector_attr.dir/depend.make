# Empty dependencies file for test_vector_attr.
# This may be replaced when dependencies are built.
