file(REMOVE_RECURSE
  "CMakeFiles/test_ops5_values.dir/test_ops5_values.cpp.o"
  "CMakeFiles/test_ops5_values.dir/test_ops5_values.cpp.o.d"
  "test_ops5_values"
  "test_ops5_values.pdb"
  "test_ops5_values[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops5_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
