# Empty dependencies file for test_ops5_values.
# This may be replaced when dependencies are built.
