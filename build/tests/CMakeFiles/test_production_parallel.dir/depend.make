# Empty dependencies file for test_production_parallel.
# This may be replaced when dependencies are built.
