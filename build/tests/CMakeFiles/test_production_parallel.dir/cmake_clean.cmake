file(REMOVE_RECURSE
  "CMakeFiles/test_production_parallel.dir/test_production_parallel.cpp.o"
  "CMakeFiles/test_production_parallel.dir/test_production_parallel.cpp.o.d"
  "test_production_parallel"
  "test_production_parallel.pdb"
  "test_production_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_production_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
