file(REMOVE_RECURSE
  "CMakeFiles/test_validate.dir/test_validate.cpp.o"
  "CMakeFiles/test_validate.dir/test_validate.cpp.o.d"
  "test_validate"
  "test_validate.pdb"
  "test_validate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
