file(REMOVE_RECURSE
  "CMakeFiles/test_presets_sim.dir/test_presets_sim.cpp.o"
  "CMakeFiles/test_presets_sim.dir/test_presets_sim.cpp.o.d"
  "test_presets_sim"
  "test_presets_sim.pdb"
  "test_presets_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presets_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
