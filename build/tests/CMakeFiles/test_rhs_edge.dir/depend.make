# Empty dependencies file for test_rhs_edge.
# This may be replaced when dependencies are built.
