file(REMOVE_RECURSE
  "CMakeFiles/test_rhs_edge.dir/test_rhs_edge.cpp.o"
  "CMakeFiles/test_rhs_edge.dir/test_rhs_edge.cpp.o.d"
  "test_rhs_edge"
  "test_rhs_edge.pdb"
  "test_rhs_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
