file(REMOVE_RECURSE
  "CMakeFiles/test_treat.dir/test_treat.cpp.o"
  "CMakeFiles/test_treat.dir/test_treat.cpp.o.d"
  "test_treat"
  "test_treat.pdb"
  "test_treat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_treat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
