# Empty dependencies file for test_treat.
# This may be replaced when dependencies are built.
