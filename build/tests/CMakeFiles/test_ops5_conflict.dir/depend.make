# Empty dependencies file for test_ops5_conflict.
# This may be replaced when dependencies are built.
