file(REMOVE_RECURSE
  "CMakeFiles/test_ops5_conflict.dir/test_ops5_conflict.cpp.o"
  "CMakeFiles/test_ops5_conflict.dir/test_ops5_conflict.cpp.o.d"
  "test_ops5_conflict"
  "test_ops5_conflict.pdb"
  "test_ops5_conflict[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops5_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
