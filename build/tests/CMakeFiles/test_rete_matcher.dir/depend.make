# Empty dependencies file for test_rete_matcher.
# This may be replaced when dependencies are built.
