file(REMOVE_RECURSE
  "CMakeFiles/test_rete_matcher.dir/test_rete_matcher.cpp.o"
  "CMakeFiles/test_rete_matcher.dir/test_rete_matcher.cpp.o.d"
  "test_rete_matcher"
  "test_rete_matcher.pdb"
  "test_rete_matcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rete_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
