file(REMOVE_RECURSE
  "CMakeFiles/test_compute.dir/test_compute.cpp.o"
  "CMakeFiles/test_compute.dir/test_compute.cpp.o.d"
  "test_compute"
  "test_compute.pdb"
  "test_compute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
