# Empty dependencies file for test_equivalence_scale.
# This may be replaced when dependencies are built.
