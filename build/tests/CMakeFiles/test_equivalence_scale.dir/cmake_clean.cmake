file(REMOVE_RECURSE
  "CMakeFiles/test_equivalence_scale.dir/test_equivalence_scale.cpp.o"
  "CMakeFiles/test_equivalence_scale.dir/test_equivalence_scale.cpp.o.d"
  "test_equivalence_scale"
  "test_equivalence_scale.pdb"
  "test_equivalence_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalence_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
