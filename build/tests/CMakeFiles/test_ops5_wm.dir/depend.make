# Empty dependencies file for test_ops5_wm.
# This may be replaced when dependencies are built.
