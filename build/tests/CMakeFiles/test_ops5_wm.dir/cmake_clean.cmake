file(REMOVE_RECURSE
  "CMakeFiles/test_ops5_wm.dir/test_ops5_wm.cpp.o"
  "CMakeFiles/test_ops5_wm.dir/test_ops5_wm.cpp.o.d"
  "test_ops5_wm"
  "test_ops5_wm.pdb"
  "test_ops5_wm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops5_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
