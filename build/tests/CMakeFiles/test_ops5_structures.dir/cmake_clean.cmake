file(REMOVE_RECURSE
  "CMakeFiles/test_ops5_structures.dir/test_ops5_structures.cpp.o"
  "CMakeFiles/test_ops5_structures.dir/test_ops5_structures.cpp.o.d"
  "test_ops5_structures"
  "test_ops5_structures.pdb"
  "test_ops5_structures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops5_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
