# Empty compiler generated dependencies file for test_fullstate.
# This may be replaced when dependencies are built.
