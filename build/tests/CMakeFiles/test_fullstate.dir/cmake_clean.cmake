file(REMOVE_RECURSE
  "CMakeFiles/test_fullstate.dir/test_fullstate.cpp.o"
  "CMakeFiles/test_fullstate.dir/test_fullstate.cpp.o.d"
  "test_fullstate"
  "test_fullstate.pdb"
  "test_fullstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
