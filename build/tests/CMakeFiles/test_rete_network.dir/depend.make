# Empty dependencies file for test_rete_network.
# This may be replaced when dependencies are built.
