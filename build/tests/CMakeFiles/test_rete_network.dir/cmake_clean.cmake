file(REMOVE_RECURSE
  "CMakeFiles/test_rete_network.dir/test_rete_network.cpp.o"
  "CMakeFiles/test_rete_network.dir/test_rete_network.cpp.o.d"
  "test_rete_network"
  "test_rete_network.pdb"
  "test_rete_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rete_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
