file(REMOVE_RECURSE
  "CMakeFiles/psm_core.dir/engine.cpp.o"
  "CMakeFiles/psm_core.dir/engine.cpp.o.d"
  "CMakeFiles/psm_core.dir/parallel_matcher.cpp.o"
  "CMakeFiles/psm_core.dir/parallel_matcher.cpp.o.d"
  "CMakeFiles/psm_core.dir/production_parallel.cpp.o"
  "CMakeFiles/psm_core.dir/production_parallel.cpp.o.d"
  "libpsm_core.a"
  "libpsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
