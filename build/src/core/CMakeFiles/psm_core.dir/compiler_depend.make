# Empty compiler generated dependencies file for psm_core.
# This may be replaced when dependencies are built.
