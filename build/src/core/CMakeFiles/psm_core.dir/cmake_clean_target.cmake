file(REMOVE_RECURSE
  "libpsm_core.a"
)
