file(REMOVE_RECURSE
  "libpsm_workloads.a"
)
