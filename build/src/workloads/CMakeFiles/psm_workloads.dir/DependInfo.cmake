
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/generator.cpp" "src/workloads/CMakeFiles/psm_workloads.dir/generator.cpp.o" "gcc" "src/workloads/CMakeFiles/psm_workloads.dir/generator.cpp.o.d"
  "/root/repo/src/workloads/presets.cpp" "src/workloads/CMakeFiles/psm_workloads.dir/presets.cpp.o" "gcc" "src/workloads/CMakeFiles/psm_workloads.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops5/CMakeFiles/psm_ops5.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
