file(REMOVE_RECURSE
  "CMakeFiles/psm_workloads.dir/generator.cpp.o"
  "CMakeFiles/psm_workloads.dir/generator.cpp.o.d"
  "CMakeFiles/psm_workloads.dir/presets.cpp.o"
  "CMakeFiles/psm_workloads.dir/presets.cpp.o.d"
  "libpsm_workloads.a"
  "libpsm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
