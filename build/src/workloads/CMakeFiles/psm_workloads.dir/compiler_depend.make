# Empty compiler generated dependencies file for psm_workloads.
# This may be replaced when dependencies are built.
