file(REMOVE_RECURSE
  "CMakeFiles/psm_sim.dir/analysis.cpp.o"
  "CMakeFiles/psm_sim.dir/analysis.cpp.o.d"
  "CMakeFiles/psm_sim.dir/capture.cpp.o"
  "CMakeFiles/psm_sim.dir/capture.cpp.o.d"
  "CMakeFiles/psm_sim.dir/rivals.cpp.o"
  "CMakeFiles/psm_sim.dir/rivals.cpp.o.d"
  "CMakeFiles/psm_sim.dir/simulator.cpp.o"
  "CMakeFiles/psm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/psm_sim.dir/trace_io.cpp.o"
  "CMakeFiles/psm_sim.dir/trace_io.cpp.o.d"
  "libpsm_sim.a"
  "libpsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
