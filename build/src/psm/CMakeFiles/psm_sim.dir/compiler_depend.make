# Empty compiler generated dependencies file for psm_sim.
# This may be replaced when dependencies are built.
