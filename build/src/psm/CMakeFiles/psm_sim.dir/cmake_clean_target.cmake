file(REMOVE_RECURSE
  "libpsm_sim.a"
)
