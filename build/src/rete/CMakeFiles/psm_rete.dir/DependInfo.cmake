
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rete/compile.cpp" "src/rete/CMakeFiles/psm_rete.dir/compile.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/compile.cpp.o.d"
  "/root/repo/src/rete/dot.cpp" "src/rete/CMakeFiles/psm_rete.dir/dot.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/dot.cpp.o.d"
  "/root/repo/src/rete/matcher.cpp" "src/rete/CMakeFiles/psm_rete.dir/matcher.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/matcher.cpp.o.d"
  "/root/repo/src/rete/network.cpp" "src/rete/CMakeFiles/psm_rete.dir/network.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/network.cpp.o.d"
  "/root/repo/src/rete/nodes.cpp" "src/rete/CMakeFiles/psm_rete.dir/nodes.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/nodes.cpp.o.d"
  "/root/repo/src/rete/validate.cpp" "src/rete/CMakeFiles/psm_rete.dir/validate.cpp.o" "gcc" "src/rete/CMakeFiles/psm_rete.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops5/CMakeFiles/psm_ops5.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
