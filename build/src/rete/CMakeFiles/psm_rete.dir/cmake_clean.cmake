file(REMOVE_RECURSE
  "CMakeFiles/psm_rete.dir/compile.cpp.o"
  "CMakeFiles/psm_rete.dir/compile.cpp.o.d"
  "CMakeFiles/psm_rete.dir/dot.cpp.o"
  "CMakeFiles/psm_rete.dir/dot.cpp.o.d"
  "CMakeFiles/psm_rete.dir/matcher.cpp.o"
  "CMakeFiles/psm_rete.dir/matcher.cpp.o.d"
  "CMakeFiles/psm_rete.dir/network.cpp.o"
  "CMakeFiles/psm_rete.dir/network.cpp.o.d"
  "CMakeFiles/psm_rete.dir/nodes.cpp.o"
  "CMakeFiles/psm_rete.dir/nodes.cpp.o.d"
  "CMakeFiles/psm_rete.dir/validate.cpp.o"
  "CMakeFiles/psm_rete.dir/validate.cpp.o.d"
  "libpsm_rete.a"
  "libpsm_rete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_rete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
