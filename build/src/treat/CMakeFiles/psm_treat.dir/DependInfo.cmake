
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treat/fullstate.cpp" "src/treat/CMakeFiles/psm_treat.dir/fullstate.cpp.o" "gcc" "src/treat/CMakeFiles/psm_treat.dir/fullstate.cpp.o.d"
  "/root/repo/src/treat/joiner.cpp" "src/treat/CMakeFiles/psm_treat.dir/joiner.cpp.o" "gcc" "src/treat/CMakeFiles/psm_treat.dir/joiner.cpp.o.d"
  "/root/repo/src/treat/naive.cpp" "src/treat/CMakeFiles/psm_treat.dir/naive.cpp.o" "gcc" "src/treat/CMakeFiles/psm_treat.dir/naive.cpp.o.d"
  "/root/repo/src/treat/treat.cpp" "src/treat/CMakeFiles/psm_treat.dir/treat.cpp.o" "gcc" "src/treat/CMakeFiles/psm_treat.dir/treat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rete/CMakeFiles/psm_rete.dir/DependInfo.cmake"
  "/root/repo/build/src/ops5/CMakeFiles/psm_ops5.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
