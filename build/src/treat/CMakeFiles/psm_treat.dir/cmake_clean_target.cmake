file(REMOVE_RECURSE
  "libpsm_treat.a"
)
