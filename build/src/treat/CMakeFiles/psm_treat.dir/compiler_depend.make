# Empty compiler generated dependencies file for psm_treat.
# This may be replaced when dependencies are built.
