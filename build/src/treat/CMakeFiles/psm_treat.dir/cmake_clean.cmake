file(REMOVE_RECURSE
  "CMakeFiles/psm_treat.dir/fullstate.cpp.o"
  "CMakeFiles/psm_treat.dir/fullstate.cpp.o.d"
  "CMakeFiles/psm_treat.dir/joiner.cpp.o"
  "CMakeFiles/psm_treat.dir/joiner.cpp.o.d"
  "CMakeFiles/psm_treat.dir/naive.cpp.o"
  "CMakeFiles/psm_treat.dir/naive.cpp.o.d"
  "CMakeFiles/psm_treat.dir/treat.cpp.o"
  "CMakeFiles/psm_treat.dir/treat.cpp.o.d"
  "libpsm_treat.a"
  "libpsm_treat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_treat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
