# Empty compiler generated dependencies file for psm_sim_cli.
# This may be replaced when dependencies are built.
