file(REMOVE_RECURSE
  "CMakeFiles/psm_sim_cli.dir/psm_sim_cli.cpp.o"
  "CMakeFiles/psm_sim_cli.dir/psm_sim_cli.cpp.o.d"
  "psm_sim_cli"
  "psm_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
