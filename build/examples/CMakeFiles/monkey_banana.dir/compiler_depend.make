# Empty compiler generated dependencies file for monkey_banana.
# This may be replaced when dependencies are built.
