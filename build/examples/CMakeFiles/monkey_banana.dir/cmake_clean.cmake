file(REMOVE_RECURSE
  "CMakeFiles/monkey_banana.dir/monkey_banana.cpp.o"
  "CMakeFiles/monkey_banana.dir/monkey_banana.cpp.o.d"
  "monkey_banana"
  "monkey_banana.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_banana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
