file(REMOVE_RECURSE
  "CMakeFiles/eight_puzzle.dir/eight_puzzle.cpp.o"
  "CMakeFiles/eight_puzzle.dir/eight_puzzle.cpp.o.d"
  "eight_puzzle"
  "eight_puzzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eight_puzzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
