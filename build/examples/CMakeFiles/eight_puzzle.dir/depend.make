# Empty dependencies file for eight_puzzle.
# This may be replaced when dependencies are built.
