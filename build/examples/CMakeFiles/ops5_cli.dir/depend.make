# Empty dependencies file for ops5_cli.
# This may be replaced when dependencies are built.
