file(REMOVE_RECURSE
  "CMakeFiles/ops5_cli.dir/ops5_cli.cpp.o"
  "CMakeFiles/ops5_cli.dir/ops5_cli.cpp.o.d"
  "ops5_cli"
  "ops5_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops5_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
