# Empty compiler generated dependencies file for network_info.
# This may be replaced when dependencies are built.
