file(REMOVE_RECURSE
  "CMakeFiles/network_info.dir/network_info.cpp.o"
  "CMakeFiles/network_info.dir/network_info.cpp.o.d"
  "network_info"
  "network_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
