# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_eight_puzzle "/root/repo/build/examples/eight_puzzle")
set_tests_properties(example_eight_puzzle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_monkey_banana "/root/repo/build/examples/monkey_banana")
set_tests_properties(example_monkey_banana PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blocks_world "/root/repo/build/examples/blocks_world")
set_tests_properties(example_blocks_world PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_info "/root/repo/build/examples/network_info" "daa")
set_tests_properties(example_network_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ops5_cli "/root/repo/build/examples/ops5_cli" "/root/repo/examples/programs/towers.ops" "--quiet")
set_tests_properties(example_ops5_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_trace_roundtrip "/root/repo/build/examples/ops5_cli" "/root/repo/examples/programs/fibonacci.ops" "--quiet" "--trace" "fib_cli_test.trace")
set_tests_properties(example_cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
